//! Concurrency tests for the metrics registry: many writer threads, one
//! merged snapshot, exact totals. These run in their own process (an
//! integration-test binary), so they own the global observability state
//! and don't need the unit tests' serialization lock.

use std::thread;

const THREADS: usize = 8;
const INCREMENTS: u64 = 10_000;

#[test]
fn concurrent_writers_produce_exact_totals() {
    likelab_obs::reset();
    likelab_obs::enable();
    thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..INCREMENTS {
                    likelab_obs::metrics::counter("cc.shared", 1);
                    likelab_obs::metrics::counter("cc.weighted", 3);
                    likelab_obs::metrics::record_ns("cc.hist", (t as u64) * INCREMENTS + i);
                    if i % 100 == 0 {
                        let _s = likelab_obs::span::enter("cc.span");
                    }
                }
            });
        }
    });
    likelab_obs::disable();
    let snap = likelab_obs::snapshot();

    let n = THREADS as u64 * INCREMENTS;
    assert_eq!(snap.counters["cc.shared"], n);
    assert_eq!(snap.counters["cc.weighted"], 3 * n);

    // Histogram totals are exact under the shard merge; values were the
    // distinct integers 0..n, so count, sum, min, and max are all known.
    let h = &snap.histograms["cc.hist"];
    assert_eq!(h.count(), n);
    assert_eq!(h.sum(), n * (n - 1) / 2);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), n - 1);

    // Span aggregates count every span even if rings evicted some records.
    let spans_per_thread = INCREMENTS.div_ceil(100);
    assert_eq!(
        snap.span_stats["cc.span"].count,
        THREADS as u64 * spans_per_thread
    );
}

#[test]
fn snapshot_merge_is_shard_order_independent() {
    // Merging is built on Histogram::merge (associative + commutative) and
    // counter addition; interleave writers with snapshot readers to check a
    // mid-flight snapshot never panics and never over-counts.
    likelab_obs::reset();
    likelab_obs::enable();
    thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for i in 0..1_000u64 {
                    likelab_obs::metrics::counter("mid.count", 1);
                    likelab_obs::metrics::record_ns("mid.hist", i % 64);
                }
            });
        }
        for _ in 0..2 {
            scope.spawn(|| {
                for _ in 0..50 {
                    let snap = likelab_obs::snapshot();
                    let c = snap.counters.get("mid.count").copied().unwrap_or(0);
                    assert!(c <= 4_000, "snapshot over-counted: {c}");
                    if let Some(h) = snap.histograms.get("mid.hist") {
                        assert!(h.count() <= 4_000);
                        assert!(h.max() < 64);
                    }
                }
            });
        }
    });
    likelab_obs::disable();
    let snap = likelab_obs::snapshot();
    assert_eq!(snap.counters["mid.count"], 4_000);
    assert_eq!(snap.histograms["mid.hist"].count(), 4_000);
}
