//! User accounts: demographics, privacy flags, ground-truth actor class,
//! and life-cycle status.
//!
//! The *actor class* is the simulator's ground truth — who is a genuine
//! user, who is a paid clicker, who is a farm sybil. The crawl API never
//! exposes it; only the detection-evaluation harness may read it, exactly
//! like the labeled data a platform operator would hold.

use crate::demographics::Profile;
use likelab_graph::UserId;
use likelab_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Ground-truth behavioural class of an account. The `u16` tags identify
/// the operator pool an account belongs to (assigned by the farm layer).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ActorClass {
    /// A regular user with organic behaviour.
    Organic,
    /// A real(ish) profile that compulsively clicks ads and likes pages —
    /// the population segment legitimate campaigns disproportionately reach.
    ClickProne,
    /// A disposable fake account driven by farm automation (bot-burst farms).
    Bot(u16),
    /// A well-masked sybil embedded in a dense social structure
    /// (stealth farms).
    StealthSybil(u16),
}

impl ActorClass {
    /// True for any account a farm operates.
    pub fn is_farm(self) -> bool {
        matches!(self, ActorClass::Bot(_) | ActorClass::StealthSybil(_))
    }

    /// The operator tag, when this is a farm account.
    pub fn operator(self) -> Option<u16> {
        match self {
            ActorClass::Bot(op) | ActorClass::StealthSybil(op) => Some(op),
            _ => None,
        }
    }
}

/// Account life-cycle status.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AccountStatus {
    /// Normal account.
    Active,
    /// Terminated by the platform's anti-fraud operation at the given time.
    /// Terminated accounts disappear from crawls and their page likes are
    /// removed from public view.
    Terminated(SimTime),
}

impl AccountStatus {
    /// True while the account is usable.
    pub fn is_active(self) -> bool {
        matches!(self, AccountStatus::Active)
    }
}

/// Bit positions for the packed [`PrivacySettings`] representation used by
/// the struct-of-arrays account store (one byte per account instead of
/// three bools).
const FRIEND_LIST_PUBLIC: u8 = 1 << 0;
const LIKES_PUBLIC: u8 = 1 << 1;
const SEARCHABLE: u8 = 1 << 2;

/// Per-account privacy settings, fixed at account creation (the paper's
/// measurements are snapshots, so modelling setting churn adds nothing).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivacySettings {
    /// Whether the friend list is publicly visible. The paper found ~80% of
    /// Facebook-campaign likers kept it private, vs. ~40–60% for most farms.
    pub friend_list_public: bool,
    /// Whether the liked-pages list is publicly visible.
    pub likes_public: bool,
    /// Whether the profile appears in the public directory (the baseline
    /// sample of the paper's ref.\[9\] was drawn from searchable profiles).
    pub searchable: bool,
}

impl PrivacySettings {
    /// Pack into one byte (the account store's columnar representation).
    pub fn to_bits(self) -> u8 {
        (if self.friend_list_public {
            FRIEND_LIST_PUBLIC
        } else {
            0
        }) | (if self.likes_public { LIKES_PUBLIC } else { 0 })
            | (if self.searchable { SEARCHABLE } else { 0 })
    }

    /// Unpack from the byte produced by [`to_bits`][Self::to_bits].
    pub fn from_bits(bits: u8) -> Self {
        PrivacySettings {
            friend_list_public: bits & FRIEND_LIST_PUBLIC != 0,
            likes_public: bits & LIKES_PUBLIC != 0,
            searchable: bits & SEARCHABLE != 0,
        }
    }
}

/// A user account.
///
/// `Copy`: this is a *view* assembled on demand from the columnar
/// [`AccountStore`](crate::store::AccountStore), not the storage layout —
/// accessors hand it out by value.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Account {
    /// Dense id; equals the index in the account store.
    pub id: UserId,
    /// Demographic profile.
    pub profile: Profile,
    /// When the account was created.
    pub created_at: SimTime,
    /// Ground-truth class (never exposed through the crawl API).
    pub class: ActorClass,
    /// Life-cycle status.
    pub status: AccountStatus,
    /// Privacy settings.
    pub privacy: PrivacySettings,
    /// Friends outside the simulated window. The simulation models a slice
    /// of the platform; profile friend *counts* include connections beyond
    /// that slice so reported friend-list sizes stay scale-invariant, while
    /// in-world edges drive the between-likers analyses.
    pub off_network_friends: u32,
}

impl Account {
    /// True while the account is active.
    pub fn is_active(&self) -> bool {
        self.status.is_active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demographics::{Country, Gender};

    fn profile() -> Profile {
        Profile {
            gender: Gender::Female,
            age: 30,
            country: Country::Usa,
            home_region: 3,
        }
    }

    #[test]
    fn actor_class_predicates() {
        assert!(!ActorClass::Organic.is_farm());
        assert!(!ActorClass::ClickProne.is_farm());
        assert!(ActorClass::Bot(2).is_farm());
        assert!(ActorClass::StealthSybil(1).is_farm());
        assert_eq!(ActorClass::Bot(2).operator(), Some(2));
        assert_eq!(ActorClass::StealthSybil(7).operator(), Some(7));
        assert_eq!(ActorClass::Organic.operator(), None);
    }

    #[test]
    fn privacy_bits_round_trip() {
        for bits in 0..8u8 {
            let p = PrivacySettings::from_bits(bits);
            assert_eq!(p.to_bits(), bits);
        }
        let p = PrivacySettings {
            friend_list_public: true,
            likes_public: false,
            searchable: true,
        };
        assert_eq!(PrivacySettings::from_bits(p.to_bits()), p);
    }

    #[test]
    fn status_transitions() {
        let mut acct = Account {
            id: UserId(0),
            profile: profile(),
            created_at: SimTime::EPOCH,
            class: ActorClass::Bot(1),
            status: AccountStatus::Active,
            privacy: PrivacySettings {
                friend_list_public: true,
                likes_public: true,
                searchable: true,
            },
            off_network_friends: 0,
        };
        assert!(acct.is_active());
        acct.status = AccountStatus::Terminated(SimTime::at_day(30));
        assert!(!acct.is_active());
        match acct.status {
            AccountStatus::Terminated(t) => assert_eq!(t, SimTime::at_day(30)),
            AccountStatus::Active => unreachable!(),
        }
    }
}
