//! Page-like ad campaigns: targeting, budget pacing, delivery planning.
//!
//! A campaign spends its daily budget evenly over its run (Facebook-style
//! pacing), buying likes at the market's per-country prices from the
//! click-prone audience the auction reaches. The output is a *delivery
//! plan* — `(user, time)` pairs — which the study runner schedules as like
//! events; planning is separated from execution so the whole study stays
//! deterministic and inspectable.

use crate::auction::AdMarket;
use crate::demographics::{Country, Gender, Profile};
use crate::population::Population;
use crate::world::OsnWorld;
use likelab_graph::{PageId, UserId};
use likelab_sim::{Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Ad-targeting constraints.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Targeting {
    /// Restrict to these countries (None = worldwide).
    pub countries: Option<Vec<Country>>,
    /// Restrict to one gender.
    pub gender: Option<Gender>,
    /// Inclusive age range.
    pub age_range: Option<(u8, u8)>,
}

impl Targeting {
    /// Worldwide, untargeted.
    pub fn worldwide() -> Self {
        Targeting::default()
    }

    /// Target a single country.
    pub fn country(c: Country) -> Self {
        Targeting {
            countries: Some(vec![c]),
            ..Targeting::default()
        }
    }

    /// Whether a profile satisfies the targeting.
    pub fn matches(&self, profile: &Profile) -> bool {
        if let Some(cs) = &self.countries {
            if !cs.contains(&profile.country) {
                return false;
            }
        }
        if let Some(g) = self.gender {
            if profile.gender != g {
                return false;
            }
        }
        if let Some((lo, hi)) = self.age_range {
            if profile.age < lo || profile.age > hi {
                return false;
            }
        }
        true
    }
}

/// A page-like ad campaign specification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdCampaignSpec {
    /// Promoted page.
    pub page: PageId,
    /// Targeting constraints.
    pub targeting: Targeting,
    /// Daily budget in cents (the paper: $6/day).
    pub daily_budget_cents: f64,
    /// Campaign length in days (the paper: 15).
    pub duration_days: u64,
    /// Fraction of delivered likes that leak from outside the targeted
    /// countries (IP geolocation noise; the paper saw 0.2–13% leakage).
    pub leakage: f64,
}

/// One planned like delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedLike {
    /// The account that will like the page.
    pub user: UserId,
    /// When the like lands.
    pub at: SimTime,
}

/// Plan the full delivery of an ad campaign starting at `launch`.
///
/// The plan draws from the population's click-prone pools (the segment that
/// actually clicks page-like ads — the paper found even legitimate-campaign
/// likers wildly unlike baseline users), never reusing a user for the same
/// page, and paces spending day by day with fractional carry-over.
pub fn plan_campaign(
    world: &OsnWorld,
    pop: &Population,
    market: &AdMarket,
    spec: &AdCampaignSpec,
    launch: SimTime,
    rng: &mut Rng,
) -> Vec<PlannedLike> {
    let mut rng = rng.fork("ads.plan");
    let targeted: Vec<Country> = spec
        .targeting
        .countries
        .clone()
        .unwrap_or_else(|| Country::ALL.to_vec());

    // Remaining reachable audience per country, demographic-filtered.
    let mut pools: Vec<(Country, Vec<UserId>)> = targeted
        .iter()
        .map(|c| {
            let pool: Vec<UserId> = pop
                .click_prone_by_country
                .get(c)
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|u| spec.targeting.matches(&world.account(*u).profile))
                        .collect()
                })
                .unwrap_or_default();
            (*c, pool)
        })
        .collect();
    for (_, pool) in &mut pools {
        rng.shuffle(pool);
    }
    // Leakage pool: click-prone users outside the targeted countries.
    let mut leak_pool: Vec<UserId> = pop
        .click_prone_by_country
        .iter()
        .filter(|(c, _)| !targeted.contains(c))
        .flat_map(|(_, ids)| ids.iter().copied())
        .collect();
    rng.shuffle(&mut leak_pool);

    let mut used: HashSet<UserId> = HashSet::new();
    let mut plan: Vec<PlannedLike> = Vec::new();
    // Fractional spend carry-over per country.
    let mut carry: Vec<f64> = vec![0.0; pools.len()];

    // Market depths are the *reach estimates* at campaign creation: the
    // auction splits budget by initial audience size, not by live pool
    // drain (an advertiser's allocation doesn't re-plan hour by hour).
    // Pools that empty mid-run simply stop converting — wasted spend.
    let initial_depths: Vec<(Country, usize)> =
        pools.iter().map(|(c, pool)| (*c, pool.len())).collect();
    for day in 0..spec.duration_days {
        let day_start = launch + SimDuration::days(day);
        let allocation = market.allocate(spec.daily_budget_cents, &initial_depths);
        for (country, budget) in allocation {
            let idx = pools
                .iter()
                .position(|(c, _)| *c == country)
                .expect("allocated market is in pools");
            let price = market.todays_cost(country, &mut rng).max(0.01);
            carry[idx] += budget;
            let n = (carry[idx] / price).floor() as usize;
            carry[idx] -= n as f64 * price;
            for _ in 0..n {
                let source = if !leak_pool.is_empty() && rng.chance(spec.leakage) {
                    &mut leak_pool
                } else {
                    &mut pools[idx].1
                };
                let Some(user) = source.pop() else { break };
                if !used.insert(user) {
                    continue;
                }
                // Likes land at a uniform moment within the day.
                let at = day_start + SimDuration::secs(rng.below(86_400));
                plan.push(PlannedLike { user, at });
            }
        }
    }
    plan.sort_by_key(|p| (p.at, p.user));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{synthesize, PopulationConfig};

    /// World at 20% scale; campaign budgets below are scaled by the same
    /// factor, exactly as the study runner does, so delivery stays
    /// budget-limited rather than pool-limited.
    const SCALE: f64 = 0.2;

    fn setup() -> (OsnWorld, Population, AdMarket) {
        // Synthesis is the expensive part; build one shared world and hand
        // each test a clone.
        static SHARED: std::sync::OnceLock<(OsnWorld, Population)> = std::sync::OnceLock::new();
        let (world, pop) = SHARED.get_or_init(|| {
            let mut world = OsnWorld::new();
            let config = PopulationConfig::default().scaled(SCALE);
            let mut rng = Rng::seed_from_u64(11);
            let pop = synthesize(&mut world, &config, &mut rng);
            (world, pop)
        });
        (world.clone(), pop.clone(), AdMarket::default())
    }

    fn honeypot(world: &mut OsnWorld) -> PageId {
        world.create_page(
            "Virtual Electricity",
            "This is not a real page, so please do not like it.",
            None,
            crate::page::PageCategory::Honeypot,
            SimTime::EPOCH,
        )
    }

    fn spec(page: PageId, targeting: Targeting) -> AdCampaignSpec {
        AdCampaignSpec {
            page,
            targeting,
            daily_budget_cents: 600.0 * SCALE,
            duration_days: 15,
            leakage: 0.02,
        }
    }

    #[test]
    fn targeting_matches_constraints() {
        let p = Profile {
            gender: Gender::Male,
            age: 20,
            country: Country::India,
            home_region: 0,
        };
        assert!(Targeting::worldwide().matches(&p));
        assert!(Targeting::country(Country::India).matches(&p));
        assert!(!Targeting::country(Country::Usa).matches(&p));
        let t = Targeting {
            countries: None,
            gender: Some(Gender::Female),
            age_range: None,
        };
        assert!(!t.matches(&p));
        let t = Targeting {
            countries: None,
            gender: None,
            age_range: Some((13, 19)),
        };
        assert!(!t.matches(&p));
        let t = Targeting {
            countries: None,
            gender: None,
            age_range: Some((18, 24)),
        };
        assert!(t.matches(&p));
    }

    #[test]
    fn india_campaign_delivers_hundreds_usa_tens() {
        let (mut world, pop, market) = setup();
        let page = honeypot(&mut world);
        let mut rng = Rng::seed_from_u64(3);
        let india = plan_campaign(
            &world,
            &pop,
            &market,
            &spec(page, Targeting::country(Country::India)),
            pop.launch,
            &mut rng,
        );
        let usa = plan_campaign(
            &world,
            &pop,
            &market,
            &spec(page, Targeting::country(Country::Usa)),
            pop.launch,
            &mut rng,
        );
        assert!(
            india.len() > usa.len() * 8,
            "India {} vs USA {}",
            india.len(),
            usa.len()
        );
        // At 20% scale the paper's 32 USA likes become ~6.
        assert!((3..=15).contains(&usa.len()), "USA {}", usa.len());
    }

    #[test]
    fn worldwide_campaign_is_india_dominated() {
        let (mut world, pop, market) = setup();
        let page = honeypot(&mut world);
        let mut rng = Rng::seed_from_u64(4);
        let plan = plan_campaign(
            &world,
            &pop,
            &market,
            &spec(page, Targeting::worldwide()),
            pop.launch,
            &mut rng,
        );
        let india = plan
            .iter()
            .filter(|p| world.account(p.user).profile.country == Country::India)
            .count();
        let share = india as f64 / plan.len().max(1) as f64;
        assert!(
            share > 0.85,
            "India share {share} of {} likes should be near-total",
            plan.len()
        );
    }

    #[test]
    fn targeted_campaign_stays_mostly_in_country() {
        let (mut world, pop, market) = setup();
        let page = honeypot(&mut world);
        let mut rng = Rng::seed_from_u64(5);
        let plan = plan_campaign(
            &world,
            &pop,
            &market,
            &spec(page, Targeting::country(Country::Egypt)),
            pop.launch,
            &mut rng,
        );
        let egypt = plan
            .iter()
            .filter(|p| world.account(p.user).profile.country == Country::Egypt)
            .count();
        let share = egypt as f64 / plan.len().max(1) as f64;
        assert!(share > 0.87, "Egypt share {share}");
        assert!(share < 1.0, "some leakage expected");
    }

    #[test]
    fn no_user_is_planned_twice() {
        let (mut world, pop, market) = setup();
        let page = honeypot(&mut world);
        let mut rng = Rng::seed_from_u64(6);
        let plan = plan_campaign(
            &world,
            &pop,
            &market,
            &spec(page, Targeting::worldwide()),
            pop.launch,
            &mut rng,
        );
        let mut users: Vec<UserId> = plan.iter().map(|p| p.user).collect();
        users.sort_unstable();
        let before = users.len();
        users.dedup();
        assert_eq!(users.len(), before);
    }

    #[test]
    fn delivery_is_paced_over_the_whole_run() {
        let (mut world, pop, market) = setup();
        let page = honeypot(&mut world);
        let mut rng = Rng::seed_from_u64(7);
        let plan = plan_campaign(
            &world,
            &pop,
            &market,
            &spec(page, Targeting::country(Country::India)),
            pop.launch,
            &mut rng,
        );
        // Likes on at least 12 of the 15 days, no day over 20% of total.
        let mut per_day = [0usize; 15];
        for p in &plan {
            let day = p.at.since(pop.launch).as_secs() / 86_400;
            per_day[day as usize] += 1;
        }
        let active_days = per_day.iter().filter(|d| **d > 0).count();
        assert!(active_days >= 12, "active days {active_days}");
        let max = *per_day.iter().max().unwrap();
        assert!(
            (max as f64) < plan.len() as f64 * 0.2,
            "bursty ad delivery: {per_day:?}"
        );
    }

    #[test]
    fn plan_is_chronological_and_in_window() {
        let (mut world, pop, market) = setup();
        let page = honeypot(&mut world);
        let mut rng = Rng::seed_from_u64(8);
        let plan = plan_campaign(
            &world,
            &pop,
            &market,
            &spec(page, Targeting::worldwide()),
            pop.launch,
            &mut rng,
        );
        assert!(!plan.is_empty());
        for w in plan.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let end = pop.launch + SimDuration::days(15);
        assert!(plan.iter().all(|p| p.at >= pop.launch && p.at < end));
    }

    #[test]
    fn empty_audience_yields_empty_plan() {
        let (mut world, pop, market) = setup();
        let page = honeypot(&mut world);
        let mut rng = Rng::seed_from_u64(9);
        // Target an age band the click-prone population barely has.
        let t = Targeting {
            countries: Some(vec![Country::India]),
            gender: None,
            age_range: Some((70, 80)),
        };
        let plan = plan_campaign(&world, &pop, &market, &spec(page, t), pop.launch, &mut rng);
        assert!(
            plan.len() < 5,
            "70-80 year old Indian clickers should be near-absent, got {}",
            plan.len()
        );
    }
}
