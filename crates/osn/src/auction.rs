//! Ad-market pricing: what a page like effectively costs per country, and
//! how a worldwide budget splits across markets.
//!
//! The paper's Table 1 fixes the effective cost-per-like of its five
//! Facebook campaigns: $90 bought 32 likes in the USA (≈ $2.81 each), 44 in
//! France (≈ $2.05), 518 in India (≈ 17¢), 691 in Egypt (≈ 13¢), and 484
//! worldwide (≈ 19¢, 96% of them Indian). Those observed prices are the
//! calibration anchors here.
//!
//! For worldwide targeting the allocator is sharply winner-take-most: cheap,
//! deep markets swallow nearly the whole budget — that is precisely how a
//! worldwide campaign ends up 96% Indian. The sharpness exponent is a
//! calibrated knob (ablated in the bench suite).

use crate::demographics::Country;
use likelab_sim::Rng;
use serde::{Deserialize, Serialize};

/// Pricing model for page-like delivery.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdMarket {
    /// Effective cost per delivered like, in cents, per country.
    pub cost_per_like_cents: Vec<(Country, f64)>,
    /// Day-to-day multiplicative price noise (log-space sigma).
    pub price_noise_sigma: f64,
    /// Winner-take-most exponent for worldwide allocation.
    pub allocation_sharpness: f64,
}

impl Default for AdMarket {
    fn default() -> Self {
        AdMarket {
            cost_per_like_cents: vec![
                (Country::Usa, 281.0),
                (Country::France, 205.0),
                (Country::India, 17.0),
                (Country::Egypt, 13.0),
                (Country::Turkey, 26.0),
                (Country::Brazil, 38.0),
                (Country::Indonesia, 21.0),
                (Country::Philippines, 23.0),
                (Country::Uk, 255.0),
                (Country::Mexico, 47.0),
            ],
            price_noise_sigma: 0.08,
            allocation_sharpness: 8.0,
        }
    }
}

impl AdMarket {
    /// Base cost per like for a country, in cents.
    ///
    /// # Panics
    /// Panics for a country missing from the table (a config error).
    pub fn base_cost(&self, country: Country) -> f64 {
        self.cost_per_like_cents
            .iter()
            .find(|(c, _)| *c == country)
            .map(|(_, p)| *p)
            .unwrap_or_else(|| panic!("no price configured for {country}"))
    }

    /// Today's cost per like with market noise applied.
    pub fn todays_cost(&self, country: Country, rng: &mut Rng) -> f64 {
        let noise = likelab_sim::dist::log_normal(rng, 0.0, self.price_noise_sigma);
        self.base_cost(country) * noise
    }

    /// Split a daily budget across candidate markets. `audience_depth` is
    /// the remaining reachable audience per market; empty markets get
    /// nothing. Returns `(country, budget_cents)` shares summing to the
    /// input budget (up to rounding), allocated winner-take-most by
    /// `depth / price`, raised to the sharpness exponent.
    pub fn allocate(&self, budget_cents: f64, markets: &[(Country, usize)]) -> Vec<(Country, f64)> {
        let mut scores: Vec<(Country, f64)> = markets
            .iter()
            .filter(|(_, depth)| *depth > 0)
            .map(|(c, depth)| {
                let value = *depth as f64 / self.base_cost(*c);
                (*c, value.powf(self.allocation_sharpness))
            })
            .collect();
        let total: f64 = scores.iter().map(|(_, s)| s).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        for (_, s) in &mut scores {
            *s = budget_cents * *s / total;
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_reflect_table1_anchors() {
        let m = AdMarket::default();
        // $90 total at these prices lands near the paper's like counts.
        assert!((9000.0 / m.base_cost(Country::Usa) - 32.0).abs() < 2.0);
        assert!((9000.0 / m.base_cost(Country::France) - 44.0).abs() < 2.0);
        assert!((9000.0 / m.base_cost(Country::India) - 518.0).abs() < 15.0);
        assert!((9000.0 / m.base_cost(Country::Egypt) - 691.0).abs() < 20.0);
    }

    #[test]
    fn todays_cost_is_noisy_but_centered() {
        let m = AdMarket::default();
        let mut rng = Rng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| m.todays_cost(Country::India, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean / 17.0 - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn worldwide_allocation_is_winner_take_most() {
        let m = AdMarket::default();
        // India: big cheap pool. Egypt smaller. USA tiny and expensive.
        let markets = vec![
            (Country::India, 2_400),
            (Country::Egypt, 1_100),
            (Country::Usa, 140),
            (Country::Brazil, 140),
        ];
        let alloc = m.allocate(600.0, &markets);
        let total: f64 = alloc.iter().map(|(_, b)| b).sum();
        assert!((total - 600.0).abs() < 1e-9);
        let india = alloc
            .iter()
            .find(|(c, _)| *c == Country::India)
            .map(|(_, b)| *b)
            .unwrap();
        assert!(
            india / total > 0.85,
            "India should swallow most of the budget, got {}",
            india / total
        );
    }

    #[test]
    fn empty_markets_get_nothing() {
        let m = AdMarket::default();
        let alloc = m.allocate(600.0, &[(Country::India, 0), (Country::Egypt, 10)]);
        assert_eq!(alloc.len(), 1);
        assert_eq!(alloc[0].0, Country::Egypt);
    }

    #[test]
    fn no_audience_no_allocation() {
        let m = AdMarket::default();
        assert!(m.allocate(600.0, &[]).is_empty());
        assert!(m.allocate(600.0, &[(Country::Usa, 0)]).is_empty());
    }

    #[test]
    #[should_panic(expected = "no price configured")]
    fn missing_price_panics() {
        let m = AdMarket {
            cost_per_like_cents: vec![(Country::Usa, 100.0)],
            ..AdMarket::default()
        };
        m.base_cost(Country::India);
    }
}
