//! The public crawl surface: what a Selenium-driven browser could see.
//!
//! Everything the study's data collection does goes through here, and the
//! privacy rules are enforced *at this boundary* (not baked into the data),
//! so the visibility ablation can dial them. The API also injects crawl
//! faults and counts requests — the paper's crawler was throttled,
//! rate-limited, and occasionally down, and the measurement pipeline has to
//! cope.
//!
//! Faults come in three regimes, all deterministic functions of the API's
//! RNG streams and the simulation clock (see [`FaultProfile`]):
//!
//! - **transient noise** — the pre-existing per-request Bernoulli coin
//!   (timeouts, layout changes);
//! - **rate-limit windows** — at most N requests per sim-hour, rejections
//!   carry a retry-after hint;
//! - **outage intervals** — bursty up/down windows sampled from an
//!   exponential on/off process on a dedicated RNG stream.
//!
//! Determinism contract: the transient coin is the *only* consumer of the
//! request RNG stream, exactly one draw per non-throttled request, so a
//! profile with rate limits and outages disabled reproduces the historical
//! stream byte-for-byte. Backoff jitter draws from a separate
//! [`Rng::split`] stream and never perturbs request outcomes.

use crate::account::AccountStatus;
use crate::world::OsnWorld;
use likelab_graph::{PageId, UserId};
use likelab_sim::{Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Why a crawl request yielded nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrawlError {
    /// Transient failure (timeout, layout change...). Retry later.
    Transient,
    /// Throttled: the per-hour request window is exhausted. The hint says
    /// how long until the window resets.
    RateLimited {
        /// Time until the request window rolls over.
        retry_after: SimDuration,
    },
    /// The crawl target is inside an outage window; nothing gets through.
    Outage,
    /// The profile no longer exists — the account was terminated.
    Gone,
}

impl CrawlError {
    /// True for errors a retry can overcome (everything but [`CrawlError::Gone`]).
    pub fn is_retryable(self) -> bool {
        !matches!(self, CrawlError::Gone)
    }
}

impl std::fmt::Display for CrawlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrawlError::Transient => f.write_str("transient crawl failure"),
            CrawlError::RateLimited { retry_after } => {
                write!(f, "rate limited (retry after {}s)", retry_after.as_secs())
            }
            CrawlError::Outage => f.write_str("crawl target unreachable (outage)"),
            CrawlError::Gone => f.write_str("profile gone (account terminated)"),
        }
    }
}

impl std::error::Error for CrawlError {}

/// A privacy-filtered public view of a profile.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicProfile {
    /// Whose profile this is.
    pub user: UserId,
    /// In-world friend list, when public.
    pub friends: Option<Vec<UserId>>,
    /// Total friend count shown on the profile (in-world plus off-network),
    /// when the friend list is public.
    pub total_friend_count: Option<usize>,
    /// Liked pages, when public.
    pub liked_pages: Option<Vec<PageId>>,
}

/// Rate-limit regime: throttle after `max_per_hour` requests in any
/// sim-hour window (fixed windows aligned to the hour).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateLimitRegime {
    /// Requests allowed per sim-hour window.
    pub max_per_hour: u32,
}

/// Outage regime: alternating up/down windows with exponentially
/// distributed lengths, sampled once from a dedicated RNG stream.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OutageRegime {
    /// Mean length of an up (reachable) window.
    pub mean_uptime: SimDuration,
    /// Mean length of a down (outage) window.
    pub mean_downtime: SimDuration,
}

/// The full fault configuration of the crawl surface. [`Default`] disables
/// the rate-limit and outage regimes, leaving only transient noise — the
/// historical behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Rate-limit windows, when enabled.
    pub rate_limit: Option<RateLimitRegime>,
    /// Bursty outage intervals, when enabled.
    pub outage: Option<OutageRegime>,
}

impl FaultProfile {
    /// True when neither the rate-limit nor the outage regime is active.
    pub fn is_quiet(&self) -> bool {
        self.rate_limit.is_none() && self.outage.is_none()
    }
}

/// Crawl-surface configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CrawlConfig {
    /// Probability any single request fails transiently (background noise).
    pub failure_prob: f64,
    /// Structured fault regimes layered on top of the noise.
    pub faults: FaultProfile,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            failure_prob: 0.01,
            faults: FaultProfile::default(),
        }
    }
}

impl CrawlConfig {
    /// A perfectly reliable crawl surface (no faults at all).
    pub fn clean() -> Self {
        CrawlConfig {
            failure_prob: 0.0,
            faults: FaultProfile::default(),
        }
    }

    /// Only transient background noise at probability `p`.
    pub fn noise(p: f64) -> Self {
        CrawlConfig {
            failure_prob: p,
            faults: FaultProfile::default(),
        }
    }

    /// All three regimes at `intensity` in `[0, 1]`: transient noise up to
    /// 15%, rate limits tightening toward 60 requests/sim-hour, outages
    /// covering up to ~1/3 of wall time in multi-hour bursts.
    pub fn chaos(intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        CrawlConfig {
            failure_prob: 0.02 + 0.13 * i,
            faults: FaultProfile {
                rate_limit: Some(RateLimitRegime {
                    max_per_hour: (600.0 - 540.0 * i) as u32,
                }),
                outage: Some(OutageRegime {
                    mean_uptime: SimDuration::hours((36.0 - 24.0 * i) as u64),
                    mean_downtime: SimDuration::hours((2.0 + 4.0 * i) as u64),
                }),
            },
        }
    }

    /// A named fault profile, the CLI's `--fault-profile` vocabulary:
    /// `none` (clean), `default` (1% noise), `throttled` (noise + tight
    /// rate limit), `flaky` (noise + outages), `chaos` (everything, at
    /// elevated intensity).
    pub fn named(name: &str) -> Option<Self> {
        Some(match name {
            "none" => CrawlConfig::clean(),
            "default" => CrawlConfig::default(),
            "throttled" => CrawlConfig {
                failure_prob: 0.01,
                faults: FaultProfile {
                    rate_limit: Some(RateLimitRegime { max_per_hour: 120 }),
                    outage: None,
                },
            },
            "flaky" => CrawlConfig {
                failure_prob: 0.05,
                faults: FaultProfile {
                    rate_limit: None,
                    outage: Some(OutageRegime {
                        mean_uptime: SimDuration::hours(20),
                        mean_downtime: SimDuration::hours(4),
                    }),
                },
            },
            "chaos" => CrawlConfig::chaos(0.75),
            _ => return None,
        })
    }
}

/// Retry behavior for [`CrawlApi::profile_with_retry`]: capped attempts
/// with jittered exponential backoff on the virtual crawl clock.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per target (at least 1).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: SimDuration,
    /// Backoff ceiling.
    pub max_backoff: SimDuration,
    /// Jitter fraction in `[0, 1]`: each wait is scaled by a uniform factor
    /// in `[1 - jitter/2, 1 + jitter/2]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_backoff: SimDuration::secs(30),
            max_backoff: SimDuration::hours(1),
            jitter: 0.5,
        }
    }
}

/// Request accounting, split by outcome. The invariant `requests ==
/// successes + failures()` always holds; `gone` responses count as
/// successes at the transport level (the server answered).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlStats {
    /// Total requests issued.
    pub requests: u64,
    /// Requests that got an answer (including `Gone` responses).
    pub successes: u64,
    /// Transient-noise failures.
    pub transient: u64,
    /// Requests rejected by the rate limiter.
    pub rate_limited: u64,
    /// Requests swallowed by an outage window.
    pub outage: u64,
    /// `Gone` responses (terminated profiles) — a subset of `successes`.
    pub gone: u64,
    /// Retry attempts beyond each target's first request.
    pub retries: u64,
    /// Total virtual time spent waiting in backoff.
    pub backoff_total: SimDuration,
}

impl CrawlStats {
    /// Failed requests across all fault regimes.
    pub fn failures(&self) -> u64 {
        self.transient + self.rate_limited + self.outage
    }
}

/// The deterministic on/off outage process. Queries are expected with
/// non-decreasing `now` (the event loop is monotone); the schedule only
/// ever advances.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct OutageSchedule {
    regime: OutageRegime,
    rng: Rng,
    /// End of the current segment.
    segment_end: SimTime,
    /// Whether the current segment is a down window.
    down: bool,
}

impl OutageSchedule {
    fn new(regime: OutageRegime, mut rng: Rng) -> Self {
        let first_up = Self::sample(&mut rng, regime.mean_uptime);
        OutageSchedule {
            regime,
            rng,
            segment_end: SimTime::EPOCH + first_up,
            down: false,
        }
    }

    /// An exponential draw with the given mean, at least one second.
    fn sample(rng: &mut Rng, mean: SimDuration) -> SimDuration {
        let u = rng.f64();
        let secs = -(1.0 - u).ln() * mean.as_secs() as f64;
        SimDuration::secs((secs.round() as u64).max(1))
    }

    fn is_down(&mut self, now: SimTime) -> bool {
        while now >= self.segment_end {
            self.down = !self.down;
            let mean = if self.down {
                self.regime.mean_downtime
            } else {
                self.regime.mean_uptime
            };
            let len = Self::sample(&mut self.rng, mean);
            self.segment_end += len;
        }
        self.down
    }
}

/// The crawl API: a stateful client with request accounting and fault
/// injection, reading privacy-filtered views of the world.
///
/// Every request method takes the current simulation time; the rate-limit
/// and outage regimes are functions of the clock.
///
/// Serializable so checkpoint/resume can freeze a client mid-run — the RNG
/// streams, outage schedule position, rate-limit window, and stats all
/// travel with it, keeping the resumed fault stream byte-identical.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrawlApi {
    config: CrawlConfig,
    rng: Rng,
    /// Jitter-only stream: consumed by backoff waits, never by request
    /// outcomes, so enabling retries cannot perturb the fault stream.
    backoff_rng: Rng,
    outage: Option<OutageSchedule>,
    /// Start of the current rate-limit window (aligned to the sim-hour).
    window_start: SimTime,
    window_requests: u32,
    stats: CrawlStats,
}

impl CrawlApi {
    /// A client with the given config and its own RNG stream.
    pub fn new(config: CrawlConfig, rng: Rng) -> Self {
        // Derived via the read-only `split` so the request stream is
        // byte-identical to a client without these side streams.
        let backoff_rng = rng.split(0x0BAC_00FF);
        let outage = config
            .faults
            .outage
            .map(|regime| OutageSchedule::new(regime, rng.split(0x00D0_D0D0)));
        CrawlApi {
            config,
            rng,
            backoff_rng,
            outage,
            window_start: SimTime::EPOCH,
            window_requests: 0,
            stats: CrawlStats::default(),
        }
    }

    /// Request accounting so far.
    pub fn stats(&self) -> &CrawlStats {
        &self.stats
    }

    /// Total requests issued.
    pub fn requests(&self) -> u64 {
        self.stats.requests
    }

    /// Failures injected, across all fault regimes.
    pub fn failures(&self) -> u64 {
        self.stats.failures()
    }

    /// One fault-injection gate: outage, then rate limit, then transient
    /// noise. Exactly one `rng` draw happens per request that reaches the
    /// noise gate, which keeps quiet-profile streams reproducible.
    fn roll(&mut self, now: SimTime) -> Result<(), CrawlError> {
        self.stats.requests += 1;
        likelab_obs::metrics::counter("crawl.requests", 1);
        if let Some(schedule) = &mut self.outage {
            if schedule.is_down(now) {
                self.stats.outage += 1;
                likelab_obs::metrics::counter("crawl.failures{kind=outage}", 1);
                return Err(CrawlError::Outage);
            }
        }
        if let Some(limit) = self.config.faults.rate_limit {
            let window = SimTime::from_secs((now.as_secs() / 3_600) * 3_600);
            if window != self.window_start {
                self.window_start = window;
                self.window_requests = 0;
            }
            self.window_requests += 1;
            if self.window_requests > limit.max_per_hour {
                self.stats.rate_limited += 1;
                likelab_obs::metrics::counter("crawl.failures{kind=rate_limited}", 1);
                let retry_after =
                    SimDuration::secs(3_600u64.saturating_sub(now.as_secs() - window.as_secs()));
                return Err(CrawlError::RateLimited { retry_after });
            }
        }
        if self.rng.chance(self.config.failure_prob) {
            self.stats.transient += 1;
            likelab_obs::metrics::counter("crawl.failures{kind=transient}", 1);
            Err(CrawlError::Transient)
        } else {
            self.stats.successes += 1;
            Ok(())
        }
    }

    /// The current visible likers of a page (active accounts only, in like
    /// order) — what the Selenium crawler scraped every two hours.
    pub fn page_likers(
        &mut self,
        world: &OsnWorld,
        page: PageId,
        now: SimTime,
    ) -> Result<Vec<UserId>, CrawlError> {
        self.roll(now)?;
        Ok(world.visible_likers(page))
    }

    /// A profile's public view. Terminated profiles return [`CrawlError::Gone`]
    /// (this is how the paper counted terminated accounts a month later).
    pub fn profile(
        &mut self,
        world: &OsnWorld,
        user: UserId,
        now: SimTime,
    ) -> Result<PublicProfile, CrawlError> {
        self.roll(now)?;
        let acct = world.account(user);
        if let AccountStatus::Terminated(_) = acct.status {
            self.stats.gone += 1;
            return Err(CrawlError::Gone);
        }
        let (friends, total_friend_count) = if acct.privacy.friend_list_public {
            let visible: Vec<UserId> = world
                .friends()
                .neighbors(user)
                .iter()
                .copied()
                // Friends who are terminated disappear from the list too.
                .filter(|f| world.account(*f).is_active())
                .collect();
            let total = visible.len() + acct.off_network_friends as usize;
            (Some(visible), Some(total))
        } else {
            (None, None)
        };
        let liked_pages = if acct.privacy.likes_public {
            Some(world.likes().user_pages(user).collect())
        } else {
            None
        };
        Ok(PublicProfile {
            user,
            friends,
            total_friend_count,
            liked_pages,
        })
    }

    /// The jittered exponential wait before retry number `retry` (1-based),
    /// never below a rate-limit `retry_after` hint.
    fn backoff(
        &mut self,
        policy: &RetryPolicy,
        retry: u32,
        hint: Option<SimDuration>,
    ) -> SimDuration {
        let doubled = policy
            .base_backoff
            .as_secs()
            .saturating_mul(1u64 << (retry - 1).min(20));
        let capped = doubled.min(policy.max_backoff.as_secs()).max(1);
        let jitter = policy.jitter.clamp(0.0, 1.0);
        let factor = 1.0 - jitter / 2.0 + jitter * self.backoff_rng.f64();
        let wait = SimDuration::secs(((capped as f64 * factor).round() as u64).max(1));
        // A rate-limit hint is a *floor*, never subject to `max_backoff`:
        // the cap bounds only the self-imposed exponential wait. When the
        // limiter reports more of its window left than the capped backoff,
        // sleeping just the backoff would re-hit the limiter and burn
        // another attempt from the budget for a guaranteed failure.
        match hint {
            Some(h) => wait.max(h),
            None => wait,
        }
    }

    /// Retry a profile fetch through retryable failures under `policy`,
    /// waiting out backoff (and rate-limit hints) on the virtual crawl
    /// clock `at`, which advances in place. `Gone` is permanent and
    /// returned immediately.
    pub fn profile_with_retry(
        &mut self,
        world: &OsnWorld,
        user: UserId,
        at: &mut SimTime,
        policy: &RetryPolicy,
    ) -> Result<PublicProfile, CrawlError> {
        let mut last = CrawlError::Transient;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                self.stats.retries += 1;
                likelab_obs::metrics::counter("crawl.retries", 1);
                let hint = match last {
                    CrawlError::RateLimited { retry_after } => Some(retry_after),
                    _ => None,
                };
                let wait = self.backoff(policy, attempt, hint);
                self.stats.backoff_total += wait;
                likelab_obs::metrics::record_ns(
                    "crawl.backoff_ns",
                    wait.as_secs().saturating_mul(1_000_000_000),
                );
                *at += wait;
            }
            match self.profile(world, user, *at) {
                Ok(p) => return Ok(p),
                Err(CrawlError::Gone) => return Err(CrawlError::Gone),
                Err(e) => last = e,
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{ActorClass, PrivacySettings};
    use crate::demographics::{Country, Gender, Profile};
    use crate::page::PageCategory;
    use likelab_sim::SimTime;

    fn profile() -> Profile {
        Profile {
            gender: Gender::Male,
            age: 25,
            country: Country::Turkey,
            home_region: 1,
        }
    }

    fn world() -> OsnWorld {
        let mut w = OsnWorld::new();
        // u0: fully public; u1: private friends, public likes; u2: private.
        for (fl, lk) in [(true, true), (false, true), (false, false)] {
            w.create_account(
                profile(),
                ActorClass::Organic,
                PrivacySettings {
                    friend_list_public: fl,
                    likes_public: lk,
                    searchable: true,
                },
                SimTime::EPOCH,
            );
        }
        w.add_friendship(UserId(0), UserId(1));
        w.add_friendship(UserId(0), UserId(2));
        let p = w.create_page("x", "", None, PageCategory::Background, SimTime::EPOCH);
        w.record_like(UserId(0), p, SimTime::EPOCH);
        w.record_like(UserId(1), p, SimTime::EPOCH);
        w
    }

    fn api(failure_prob: f64) -> CrawlApi {
        CrawlApi::new(CrawlConfig::noise(failure_prob), Rng::seed_from_u64(42))
    }

    const NOW: SimTime = SimTime::EPOCH;

    #[test]
    fn privacy_filters_friend_lists_and_likes() {
        let w = world();
        let mut api = api(0.0);
        let p0 = api.profile(&w, UserId(0), NOW).unwrap();
        assert_eq!(p0.friends, Some(vec![UserId(1), UserId(2)]));
        assert_eq!(p0.total_friend_count, Some(2));
        assert_eq!(p0.liked_pages.as_ref().map(Vec::len), Some(1));
        let p1 = api.profile(&w, UserId(1), NOW).unwrap();
        assert_eq!(p1.friends, None, "friend list is private");
        assert!(p1.liked_pages.is_some());
        let p2 = api.profile(&w, UserId(2), NOW).unwrap();
        assert_eq!(p2.friends, None);
        assert_eq!(p2.liked_pages, None);
    }

    #[test]
    fn terminated_profiles_are_gone_and_drop_from_friend_lists() {
        let mut w = world();
        w.terminate_account(UserId(2), SimTime::at_day(1));
        let mut api = api(0.0);
        assert_eq!(api.profile(&w, UserId(2), NOW), Err(CrawlError::Gone));
        let p0 = api.profile(&w, UserId(0), NOW).unwrap();
        assert_eq!(p0.friends, Some(vec![UserId(1)]));
        assert_eq!(api.stats().gone, 1);
    }

    #[test]
    fn page_likers_exclude_terminated() {
        let mut w = world();
        let page = PageId(0);
        let mut api = api(0.0);
        assert_eq!(
            api.page_likers(&w, page, NOW).unwrap(),
            vec![UserId(0), UserId(1)]
        );
        w.terminate_account(UserId(0), SimTime::at_day(1));
        assert_eq!(api.page_likers(&w, page, NOW).unwrap(), vec![UserId(1)]);
    }

    #[test]
    fn failures_are_injected_and_counted() {
        let w = world();
        let mut api = api(0.5);
        let mut failures = 0;
        for _ in 0..1_000 {
            if api.profile(&w, UserId(0), NOW).is_err() {
                failures += 1;
            }
        }
        assert_eq!(api.requests(), 1_000);
        assert_eq!(api.failures(), failures);
        assert!((400..600).contains(&failures), "failures {failures}");
        let s = api.stats();
        assert_eq!(s.requests, s.successes + s.failures(), "coverage identity");
    }

    #[test]
    fn retry_overcomes_transient_failures() {
        let w = world();
        let mut api = api(0.5);
        let policy = RetryPolicy {
            attempts: 8,
            ..RetryPolicy::default()
        };
        let mut ok = 0;
        let mut at = NOW;
        for _ in 0..200 {
            if api
                .profile_with_retry(&w, UserId(0), &mut at, &policy)
                .is_ok()
            {
                ok += 1;
            }
        }
        assert!(
            ok >= 198,
            "8 retries at 50% should almost always land: {ok}"
        );
        assert!(api.stats().retries > 0);
        assert!(!api.stats().backoff_total.is_zero(), "backoff accumulates");
    }

    #[test]
    fn retry_does_not_mask_gone() {
        let mut w = world();
        w.terminate_account(UserId(0), SimTime::at_day(1));
        let mut api = api(0.0);
        let mut at = NOW;
        assert_eq!(
            api.profile_with_retry(&w, UserId(0), &mut at, &RetryPolicy::default()),
            Err(CrawlError::Gone)
        );
        assert_eq!(api.requests(), 1, "Gone is permanent, no retries");
        assert_eq!(at, NOW, "no backoff waits for a permanent answer");
    }

    #[test]
    fn quiet_profile_reproduces_the_historical_stream() {
        // A config with the structured regimes disabled must consume the
        // request RNG exactly as the pre-regime implementation did: one
        // draw per request, nothing else.
        let w = world();
        let mut api = CrawlApi::new(CrawlConfig::noise(0.3), Rng::seed_from_u64(42));
        let outcomes: Vec<bool> = (0..200)
            .map(|i| {
                api.profile(&w, UserId(0), SimTime::from_secs(i * 7_200))
                    .is_ok()
            })
            .collect();
        let mut reference = Rng::seed_from_u64(42);
        let expected: Vec<bool> = (0..200).map(|_| !reference.chance(0.3)).collect();
        assert_eq!(outcomes, expected, "request stream must not drift");
    }

    #[test]
    fn rate_limit_throttles_within_the_hour_and_resets() {
        let w = world();
        let config = CrawlConfig {
            failure_prob: 0.0,
            faults: FaultProfile {
                rate_limit: Some(RateLimitRegime { max_per_hour: 5 }),
                outage: None,
            },
        };
        let mut api = CrawlApi::new(config, Rng::seed_from_u64(1));
        let t = SimTime::from_secs(100);
        for _ in 0..5 {
            assert!(api.profile(&w, UserId(0), t).is_ok());
        }
        match api.profile(&w, UserId(0), t) {
            Err(CrawlError::RateLimited { retry_after }) => {
                assert_eq!(retry_after, SimDuration::secs(3_500), "until window end");
            }
            other => panic!("expected throttle, got {other:?}"),
        }
        // Next window: requests flow again.
        let t2 = SimTime::from_secs(3_600);
        assert!(api.profile(&w, UserId(0), t2).is_ok());
        assert_eq!(api.stats().rate_limited, 1);
    }

    #[test]
    fn rate_limited_retry_waits_out_the_window() {
        let w = world();
        let config = CrawlConfig {
            failure_prob: 0.0,
            faults: FaultProfile {
                rate_limit: Some(RateLimitRegime { max_per_hour: 3 }),
                outage: None,
            },
        };
        let mut api = CrawlApi::new(config, Rng::seed_from_u64(1));
        let mut at = SimTime::EPOCH;
        for _ in 0..3 {
            assert!(api
                .profile_with_retry(&w, UserId(0), &mut at, &RetryPolicy::default())
                .is_ok());
        }
        // The fourth target trips the limiter; the retry-after hint pushes
        // the virtual clock past the window and the retry succeeds.
        let before = at;
        assert!(api
            .profile_with_retry(&w, UserId(0), &mut at, &RetryPolicy::default())
            .is_ok());
        assert!(
            at >= before + SimDuration::hours(1),
            "waited out the window"
        );
    }

    #[test]
    fn long_retry_after_hint_overrides_backoff_cap() {
        // Regression: a `retry_after` hint far above `max_backoff` must be
        // honored in full. With the hint clamped to the 60 s cap, every
        // retry would land inside the same rate-limit window and the whole
        // attempt budget would burn on guaranteed failures.
        let w = world();
        let config = CrawlConfig {
            failure_prob: 0.0,
            faults: FaultProfile {
                rate_limit: Some(RateLimitRegime { max_per_hour: 1 }),
                outage: None,
            },
        };
        let policy = RetryPolicy {
            attempts: 2,
            base_backoff: SimDuration::secs(10),
            max_backoff: SimDuration::secs(60),
            jitter: 0.0,
        };
        let mut api = CrawlApi::new(config, Rng::seed_from_u64(1));
        let mut at = SimTime::EPOCH;
        assert!(api
            .profile_with_retry(&w, UserId(0), &mut at, &policy)
            .is_ok());
        // Window exhausted; the hint is ~the full hour, dwarfing the cap.
        let before = at;
        let requests_before = api.stats().requests;
        assert!(
            api.profile_with_retry(&w, UserId(0), &mut at, &policy)
                .is_ok(),
            "one hint-sized wait must clear the window within 2 attempts"
        );
        assert!(
            at >= before + SimDuration::hours(1),
            "clock must advance by the full retry_after, not the 60 s cap"
        );
        assert_eq!(
            api.stats().requests - requests_before,
            2,
            "exactly one rate-limited probe plus one successful retry"
        );
        assert_eq!(api.stats().rate_limited, 1);
    }

    #[test]
    fn outage_windows_are_deterministic_and_bursty() {
        let w = world();
        let config = CrawlConfig {
            failure_prob: 0.0,
            faults: FaultProfile {
                rate_limit: None,
                outage: Some(OutageRegime {
                    mean_uptime: SimDuration::hours(10),
                    mean_downtime: SimDuration::hours(5),
                }),
            },
        };
        let run = || {
            let mut api = CrawlApi::new(config, Rng::seed_from_u64(9));
            (0..2_000)
                .map(|i| {
                    api.page_likers(&w, PageId(0), SimTime::from_secs(i * 600))
                        .is_err()
                })
                .collect::<Vec<bool>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "outage schedule is a pure function of the seed");
        let downs = a.iter().filter(|d| **d).count();
        assert!(downs > 0, "outages must occur over two weeks");
        assert!(downs < a.len(), "the API must come back up");
        // Bursty: failures cluster — far fewer up/down flips than a
        // Bernoulli process with the same marginal rate would produce.
        let flips = a.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(flips < a.len() / 10, "outages arrive in windows: {flips}");
    }

    #[test]
    fn named_profiles_cover_the_cli_vocabulary() {
        for name in ["none", "default", "throttled", "flaky", "chaos"] {
            assert!(CrawlConfig::named(name).is_some(), "{name}");
        }
        assert!(CrawlConfig::named("bogus").is_none());
        assert_eq!(CrawlConfig::named("none").unwrap().failure_prob, 0.0);
        assert!(CrawlConfig::named("chaos").unwrap().failure_prob > 0.1);
        assert!(CrawlConfig::named("default").unwrap().faults.is_quiet());
    }

    #[test]
    fn stats_identity_holds_under_chaos() {
        let w = world();
        let mut api = CrawlApi::new(CrawlConfig::chaos(1.0), Rng::seed_from_u64(3));
        let mut at = SimTime::EPOCH;
        for i in 0..500u64 {
            at += SimDuration::minutes(7 * (i % 11) + 1);
            let _ = api.profile_with_retry(&w, UserId(0), &mut at, &RetryPolicy::default());
        }
        let s = api.stats();
        assert_eq!(s.requests, s.successes + s.failures());
        assert!(s.rate_limited + s.outage + s.transient > 0, "chaos bites");
    }
}
