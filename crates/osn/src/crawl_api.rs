//! The public crawl surface: what a Selenium-driven browser could see.
//!
//! Everything the study's data collection does goes through here, and the
//! privacy rules are enforced *at this boundary* (not baked into the data),
//! so the visibility ablation can dial them. The API also injects transient
//! crawl failures and counts requests — real crawls fail and get throttled,
//! and the crawler has to cope.

use crate::account::AccountStatus;
use crate::world::OsnWorld;
use likelab_graph::{PageId, UserId};
use likelab_sim::Rng;
use serde::{Deserialize, Serialize};

/// Why a crawl request yielded nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrawlError {
    /// Transient failure (timeout, throttling, layout change...). Retry later.
    Transient,
    /// The profile no longer exists — the account was terminated.
    Gone,
}

impl std::fmt::Display for CrawlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrawlError::Transient => f.write_str("transient crawl failure"),
            CrawlError::Gone => f.write_str("profile gone (account terminated)"),
        }
    }
}

impl std::error::Error for CrawlError {}

/// A privacy-filtered public view of a profile.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicProfile {
    /// Whose profile this is.
    pub user: UserId,
    /// In-world friend list, when public.
    pub friends: Option<Vec<UserId>>,
    /// Total friend count shown on the profile (in-world plus off-network),
    /// when the friend list is public.
    pub total_friend_count: Option<usize>,
    /// Liked pages, when public.
    pub liked_pages: Option<Vec<PageId>>,
}

/// Crawl-surface configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CrawlConfig {
    /// Probability any single request fails transiently.
    pub failure_prob: f64,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig { failure_prob: 0.01 }
    }
}

/// The crawl API: a stateful client with request accounting and fault
/// injection, reading privacy-filtered views of the world.
#[derive(Debug)]
pub struct CrawlApi {
    config: CrawlConfig,
    rng: Rng,
    requests: u64,
    failures: u64,
}

impl CrawlApi {
    /// A client with the given config and its own RNG stream.
    pub fn new(config: CrawlConfig, rng: Rng) -> Self {
        CrawlApi {
            config,
            rng,
            requests: 0,
            failures: 0,
        }
    }

    /// Total requests issued.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Transient failures injected.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    fn roll(&mut self) -> Result<(), CrawlError> {
        self.requests += 1;
        if self.rng.chance(self.config.failure_prob) {
            self.failures += 1;
            Err(CrawlError::Transient)
        } else {
            Ok(())
        }
    }

    /// The current visible likers of a page (active accounts only, in like
    /// order) — what the Selenium crawler scraped every two hours.
    pub fn page_likers(
        &mut self,
        world: &OsnWorld,
        page: PageId,
    ) -> Result<Vec<UserId>, CrawlError> {
        self.roll()?;
        Ok(world.visible_likers(page))
    }

    /// A profile's public view. Terminated profiles return [`CrawlError::Gone`]
    /// (this is how the paper counted terminated accounts a month later).
    pub fn profile(&mut self, world: &OsnWorld, user: UserId) -> Result<PublicProfile, CrawlError> {
        self.roll()?;
        let acct = world.account(user);
        if let AccountStatus::Terminated(_) = acct.status {
            return Err(CrawlError::Gone);
        }
        let (friends, total_friend_count) = if acct.privacy.friend_list_public {
            let visible: Vec<UserId> = world
                .friends()
                .neighbors(user)
                .iter()
                .copied()
                // Friends who are terminated disappear from the list too.
                .filter(|f| world.account(*f).is_active())
                .collect();
            let total = visible.len() + acct.off_network_friends as usize;
            (Some(visible), Some(total))
        } else {
            (None, None)
        };
        let liked_pages = if acct.privacy.likes_public {
            Some(world.likes().graph().pages_of(user).to_vec())
        } else {
            None
        };
        Ok(PublicProfile {
            user,
            friends,
            total_friend_count,
            liked_pages,
        })
    }

    /// Retry a profile fetch through transient failures, up to `attempts`.
    /// `Gone` is permanent and returned immediately.
    pub fn profile_with_retry(
        &mut self,
        world: &OsnWorld,
        user: UserId,
        attempts: u32,
    ) -> Result<PublicProfile, CrawlError> {
        let mut last = CrawlError::Transient;
        for _ in 0..attempts.max(1) {
            match self.profile(world, user) {
                Ok(p) => return Ok(p),
                Err(CrawlError::Gone) => return Err(CrawlError::Gone),
                Err(e) => last = e,
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{ActorClass, PrivacySettings};
    use crate::demographics::{Country, Gender, Profile};
    use crate::page::PageCategory;
    use likelab_sim::SimTime;

    fn profile() -> Profile {
        Profile {
            gender: Gender::Male,
            age: 25,
            country: Country::Turkey,
            home_region: 1,
        }
    }

    fn world() -> OsnWorld {
        let mut w = OsnWorld::new();
        // u0: fully public; u1: private friends, public likes; u2: private.
        for (fl, lk) in [(true, true), (false, true), (false, false)] {
            w.create_account(
                profile(),
                ActorClass::Organic,
                PrivacySettings {
                    friend_list_public: fl,
                    likes_public: lk,
                    searchable: true,
                },
                SimTime::EPOCH,
            );
        }
        w.add_friendship(UserId(0), UserId(1));
        w.add_friendship(UserId(0), UserId(2));
        let p = w.create_page("x", "", None, PageCategory::Background, SimTime::EPOCH);
        w.record_like(UserId(0), p, SimTime::EPOCH);
        w.record_like(UserId(1), p, SimTime::EPOCH);
        w
    }

    fn api(failure_prob: f64) -> CrawlApi {
        CrawlApi::new(CrawlConfig { failure_prob }, Rng::seed_from_u64(42))
    }

    #[test]
    fn privacy_filters_friend_lists_and_likes() {
        let w = world();
        let mut api = api(0.0);
        let p0 = api.profile(&w, UserId(0)).unwrap();
        assert_eq!(p0.friends, Some(vec![UserId(1), UserId(2)]));
        assert_eq!(p0.total_friend_count, Some(2));
        assert_eq!(p0.liked_pages.as_ref().map(Vec::len), Some(1));
        let p1 = api.profile(&w, UserId(1)).unwrap();
        assert_eq!(p1.friends, None, "friend list is private");
        assert!(p1.liked_pages.is_some());
        let p2 = api.profile(&w, UserId(2)).unwrap();
        assert_eq!(p2.friends, None);
        assert_eq!(p2.liked_pages, None);
    }

    #[test]
    fn terminated_profiles_are_gone_and_drop_from_friend_lists() {
        let mut w = world();
        w.terminate_account(UserId(2), SimTime::at_day(1));
        let mut api = api(0.0);
        assert_eq!(api.profile(&w, UserId(2)), Err(CrawlError::Gone));
        let p0 = api.profile(&w, UserId(0)).unwrap();
        assert_eq!(p0.friends, Some(vec![UserId(1)]));
    }

    #[test]
    fn page_likers_exclude_terminated() {
        let mut w = world();
        let page = PageId(0);
        let mut api = api(0.0);
        assert_eq!(
            api.page_likers(&w, page).unwrap(),
            vec![UserId(0), UserId(1)]
        );
        w.terminate_account(UserId(0), SimTime::at_day(1));
        assert_eq!(api.page_likers(&w, page).unwrap(), vec![UserId(1)]);
    }

    #[test]
    fn failures_are_injected_and_counted() {
        let w = world();
        let mut api = api(0.5);
        let mut failures = 0;
        for _ in 0..1_000 {
            if api.profile(&w, UserId(0)).is_err() {
                failures += 1;
            }
        }
        assert_eq!(api.requests(), 1_000);
        assert_eq!(api.failures(), failures);
        assert!((400..600).contains(&failures), "failures {failures}");
    }

    #[test]
    fn retry_overcomes_transient_failures() {
        let w = world();
        let mut api = api(0.5);
        let mut ok = 0;
        for _ in 0..200 {
            if api.profile_with_retry(&w, UserId(0), 8).is_ok() {
                ok += 1;
            }
        }
        assert!(
            ok >= 198,
            "8 retries at 50% should almost always land: {ok}"
        );
    }

    #[test]
    fn retry_does_not_mask_gone() {
        let mut w = world();
        w.terminate_account(UserId(0), SimTime::at_day(1));
        let mut api = api(0.0);
        assert_eq!(
            api.profile_with_retry(&w, UserId(0), 5),
            Err(CrawlError::Gone)
        );
        assert_eq!(api.requests(), 1, "Gone is permanent, no retries");
    }
}
