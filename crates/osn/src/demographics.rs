//! Demographic vocabulary: countries, gender, age brackets, and the global
//! platform marginals the paper compares against.
//!
//! Figure 1 buckets likers into USA / India / Egypt / Turkey / France /
//! Other; Table 2 uses six age brackets and a binary gender split, with the
//! global Facebook row (46/54 F/M; 14.9 / 32.3 / 26.6 / 13.2 / 7.2 / 5.9 %)
//! as the KL-divergence reference. Those published marginals are encoded
//! here and double as the population synthesizer's priors.

use likelab_sim::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Countries the simulation distinguishes. The first five are the ones the
/// paper's Figure 1 names; the rest exist so "Other" has real mass.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Country {
    Usa,
    France,
    India,
    Egypt,
    Turkey,
    Brazil,
    Indonesia,
    Philippines,
    Uk,
    Mexico,
}

impl Country {
    /// All countries, in a fixed order.
    pub const ALL: [Country; 10] = [
        Country::Usa,
        Country::France,
        Country::India,
        Country::Egypt,
        Country::Turkey,
        Country::Brazil,
        Country::Indonesia,
        Country::Philippines,
        Country::Uk,
        Country::Mexico,
    ];

    /// The Figure 1 legend bucket this country falls into.
    pub fn geo_bucket(self) -> GeoBucket {
        match self {
            Country::Usa => GeoBucket::Usa,
            Country::India => GeoBucket::India,
            Country::Egypt => GeoBucket::Egypt,
            Country::Turkey => GeoBucket::Turkey,
            Country::France => GeoBucket::France,
            _ => GeoBucket::Other,
        }
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Country::Usa => "USA",
            Country::France => "France",
            Country::India => "India",
            Country::Egypt => "Egypt",
            Country::Turkey => "Turkey",
            Country::Brazil => "Brazil",
            Country::Indonesia => "Indonesia",
            Country::Philippines => "Philippines",
            Country::Uk => "UK",
            Country::Mexico => "Mexico",
        };
        f.write_str(s)
    }
}

/// The six-way location legend of Figure 1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum GeoBucket {
    Usa,
    India,
    Egypt,
    Turkey,
    France,
    Other,
}

impl GeoBucket {
    /// All buckets in the paper's legend order.
    pub const ALL: [GeoBucket; 6] = [
        GeoBucket::Usa,
        GeoBucket::India,
        GeoBucket::Egypt,
        GeoBucket::Turkey,
        GeoBucket::France,
        GeoBucket::Other,
    ];

    /// Position in [`ALL`][Self::ALL] (dense array aggregation key).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for GeoBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GeoBucket::Usa => "USA",
            GeoBucket::India => "India",
            GeoBucket::Egypt => "Egypt",
            GeoBucket::Turkey => "Turkey",
            GeoBucket::France => "France",
            GeoBucket::Other => "Other",
        };
        f.write_str(s)
    }
}

/// Binary gender as the platform reports it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Gender {
    Female,
    Male,
}

/// Table 2's six age brackets.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AgeBracket {
    A13_17,
    A18_24,
    A25_34,
    A35_44,
    A45_54,
    A55Plus,
}

impl AgeBracket {
    /// All brackets in ascending order.
    pub const ALL: [AgeBracket; 6] = [
        AgeBracket::A13_17,
        AgeBracket::A18_24,
        AgeBracket::A25_34,
        AgeBracket::A35_44,
        AgeBracket::A45_54,
        AgeBracket::A55Plus,
    ];

    /// The bracket a given age falls in.
    ///
    /// # Panics
    /// Panics for ages below 13 — the platform's minimum age.
    pub fn from_age(age: u8) -> AgeBracket {
        assert!(age >= 13, "platform minimum age is 13, got {age}");
        match age {
            13..=17 => AgeBracket::A13_17,
            18..=24 => AgeBracket::A18_24,
            25..=34 => AgeBracket::A25_34,
            35..=44 => AgeBracket::A35_44,
            45..=54 => AgeBracket::A45_54,
            _ => AgeBracket::A55Plus,
        }
    }

    /// A uniform age within the bracket (55+ capped at 80).
    pub fn sample_age(self, rng: &mut Rng) -> u8 {
        let (lo, hi) = match self {
            AgeBracket::A13_17 => (13, 17),
            AgeBracket::A18_24 => (18, 24),
            AgeBracket::A25_34 => (25, 34),
            AgeBracket::A35_44 => (35, 44),
            AgeBracket::A45_54 => (45, 54),
            AgeBracket::A55Plus => (55, 80),
        };
        rng.range(lo, hi + 1) as u8
    }

    /// The bracket index into [`AgeBracket::ALL`], which lists the variants
    /// in declaration order — the discriminant doubles as the index.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for AgeBracket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AgeBracket::A13_17 => "13-17",
            AgeBracket::A18_24 => "18-24",
            AgeBracket::A25_34 => "25-34",
            AgeBracket::A35_44 => "35-44",
            AgeBracket::A45_54 => "45-54",
            AgeBracket::A55Plus => "55+",
        };
        f.write_str(s)
    }
}

/// Global platform gender split (fraction female) — Table 2 last row.
pub const GLOBAL_FEMALE_FRACTION: f64 = 0.46;

/// Global platform age distribution over [`AgeBracket::ALL`] — Table 2 last
/// row, as fractions.
pub const GLOBAL_AGE_DIST: [f64; 6] = [0.149, 0.323, 0.266, 0.132, 0.072, 0.059];

/// A complete demographic profile.
///
/// Derives `Hash`/`Eq` so world-scale account stores can intern profiles:
/// the value space is tiny (2 genders × ~68 ages × 10 countries × regions),
/// so millions of accounts share a few thousand distinct entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Profile {
    /// Reported gender.
    pub gender: Gender,
    /// Age in years (≥ 13).
    pub age: u8,
    /// Current country (what ad targeting and Figure 1 see; the platform
    /// derives it from the IP address per the paper's footnote).
    pub country: Country,
    /// Hometown region code within the country (coarse; used for hometown
    /// statistics in reports).
    pub home_region: u8,
}

impl Profile {
    /// The age bracket of this profile.
    pub fn age_bracket(&self) -> AgeBracket {
        AgeBracket::from_age(self.age)
    }
}

/// A demographic *blueprint*: the marginals a population segment is drawn
/// from. Farms get their own blueprints (e.g. SocialFormula's near-global
/// demographics; MammothSocials' 26/74 male-heavy 18-34 mix).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Blueprint {
    /// Fraction of profiles that are female.
    pub female_fraction: f64,
    /// Age-bracket weights over [`AgeBracket::ALL`] (need not sum to 1).
    pub age_weights: [f64; 6],
    /// Country weights as `(country, weight)` pairs.
    pub country_weights: Vec<(Country, f64)>,
}

impl Blueprint {
    /// The global-platform blueprint with a given country mix.
    pub fn global_with_countries(country_weights: Vec<(Country, f64)>) -> Self {
        Blueprint {
            female_fraction: GLOBAL_FEMALE_FRACTION,
            age_weights: GLOBAL_AGE_DIST,
            country_weights,
        }
    }

    /// Draw a profile from the blueprint.
    pub fn sample(&self, rng: &mut Rng) -> Profile {
        let gender = if rng.chance(self.female_fraction) {
            Gender::Female
        } else {
            Gender::Male
        };
        let bracket = AgeBracket::ALL[rng.weighted_index(&self.age_weights)];
        let weights: Vec<f64> = self.country_weights.iter().map(|(_, w)| *w).collect();
        let country = self.country_weights[rng.weighted_index(&weights)].0;
        Profile {
            gender,
            age: bracket.sample_age(rng),
            country,
            home_region: rng.below(32) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_age_dist_sums_to_one() {
        let sum: f64 = GLOBAL_AGE_DIST.iter().sum();
        assert!((sum - 1.001).abs() < 0.01, "published row sums to ~100.1%");
    }

    #[test]
    fn bracket_boundaries() {
        assert_eq!(AgeBracket::from_age(13), AgeBracket::A13_17);
        assert_eq!(AgeBracket::from_age(17), AgeBracket::A13_17);
        assert_eq!(AgeBracket::from_age(18), AgeBracket::A18_24);
        assert_eq!(AgeBracket::from_age(24), AgeBracket::A18_24);
        assert_eq!(AgeBracket::from_age(25), AgeBracket::A25_34);
        assert_eq!(AgeBracket::from_age(34), AgeBracket::A25_34);
        assert_eq!(AgeBracket::from_age(35), AgeBracket::A35_44);
        assert_eq!(AgeBracket::from_age(44), AgeBracket::A35_44);
        assert_eq!(AgeBracket::from_age(45), AgeBracket::A45_54);
        assert_eq!(AgeBracket::from_age(54), AgeBracket::A45_54);
        assert_eq!(AgeBracket::from_age(55), AgeBracket::A55Plus);
        assert_eq!(AgeBracket::from_age(99), AgeBracket::A55Plus);
    }

    #[test]
    #[should_panic(expected = "minimum age")]
    fn under_13_rejected() {
        AgeBracket::from_age(12);
    }

    #[test]
    fn sample_age_lands_in_bracket() {
        let mut rng = Rng::seed_from_u64(1);
        for bracket in AgeBracket::ALL {
            for _ in 0..200 {
                let age = bracket.sample_age(&mut rng);
                assert_eq!(AgeBracket::from_age(age), bracket);
            }
        }
    }

    #[test]
    fn bracket_index_round_trips() {
        for (i, b) in AgeBracket::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
    }

    #[test]
    fn geo_buckets_map_named_countries() {
        assert_eq!(Country::Usa.geo_bucket(), GeoBucket::Usa);
        assert_eq!(Country::Turkey.geo_bucket(), GeoBucket::Turkey);
        assert_eq!(Country::Brazil.geo_bucket(), GeoBucket::Other);
        assert_eq!(Country::Uk.geo_bucket(), GeoBucket::Other);
    }

    #[test]
    fn blueprint_sampling_respects_marginals() {
        let bp = Blueprint {
            female_fraction: 0.25,
            age_weights: [0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            country_weights: vec![(Country::India, 3.0), (Country::Egypt, 1.0)],
        };
        let mut rng = Rng::seed_from_u64(2);
        let n = 20_000;
        let mut females = 0;
        let mut india = 0;
        for _ in 0..n {
            let p = bp.sample(&mut rng);
            assert_eq!(p.age_bracket(), AgeBracket::A18_24);
            if p.gender == Gender::Female {
                females += 1;
            }
            if p.country == Country::India {
                india += 1;
            }
        }
        assert!((females as f64 / n as f64 - 0.25).abs() < 0.02);
        assert!((india as f64 / n as f64 - 0.75).abs() < 0.02);
    }

    #[test]
    fn display_labels_match_paper() {
        assert_eq!(AgeBracket::A55Plus.to_string(), "55+");
        assert_eq!(GeoBucket::Usa.to_string(), "USA");
        assert_eq!(Country::France.to_string(), "France");
    }
}
