//! The public directory: all searchable profiles.
//!
//! The paper's baseline sample (2000 users, used as the Figure 4 reference
//! CDF) was "obtained by randomly sampling Facebook public directory which
//! lists all the IDs of searchable profiles". Same mechanism here.

use crate::world::OsnWorld;
use likelab_graph::UserId;
use likelab_sim::Rng;

/// All currently searchable, active profiles.
pub fn searchable_profiles(world: &OsnWorld) -> Vec<UserId> {
    world
        .user_ids()
        .filter(|u| {
            let a = world.account(*u);
            a.is_active() && a.privacy.searchable
        })
        .collect()
}

/// An unbiased random sample of `n` searchable profiles (without
/// replacement; the whole directory when it is smaller than `n`).
pub fn random_sample(world: &OsnWorld, n: usize, rng: &mut Rng) -> Vec<UserId> {
    let directory = searchable_profiles(world);
    rng.sample_without_replacement(&directory, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{ActorClass, PrivacySettings};
    use crate::demographics::{Country, Gender, Profile};
    use likelab_sim::SimTime;

    fn world(n: usize, searchable_every: usize) -> OsnWorld {
        let mut w = OsnWorld::new();
        for i in 0..n {
            w.create_account(
                Profile {
                    gender: Gender::Female,
                    age: 30,
                    country: Country::Uk,
                    home_region: 0,
                },
                ActorClass::Organic,
                PrivacySettings {
                    friend_list_public: true,
                    likes_public: true,
                    searchable: i % searchable_every == 0,
                },
                SimTime::EPOCH,
            );
        }
        w
    }

    #[test]
    fn directory_lists_only_searchable() {
        let w = world(10, 2);
        let d = searchable_profiles(&w);
        assert_eq!(d.len(), 5);
        assert!(d.iter().all(|u| u.0 % 2 == 0));
    }

    #[test]
    fn terminated_accounts_leave_the_directory() {
        let mut w = world(4, 1);
        w.terminate_account(UserId(1), SimTime::at_day(1));
        let d = searchable_profiles(&w);
        assert_eq!(d.len(), 3);
        assert!(!d.contains(&UserId(1)));
    }

    #[test]
    fn sample_is_distinct_and_bounded() {
        let w = world(100, 1);
        let mut rng = Rng::seed_from_u64(5);
        let s = random_sample(&w, 30, &mut rng);
        assert_eq!(s.len(), 30);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 30);
        // Over-ask clips to directory size.
        assert_eq!(random_sample(&w, 1_000, &mut rng).len(), 100);
    }
}
