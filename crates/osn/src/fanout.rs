//! Event → detector-update fanout: the bridge between a replayed
//! [`WorldEvent`] stream and incremental detectors.
//!
//! A batch detector reads the finished [`OsnWorld`]; an *online* detector
//! needs to know, per event, what actually changed. The world's own
//! [`OsnWorld::apply_event`] deliberately reports nothing (replay is a pure
//! fold), and several events are not 1:1 with mutations anyway: a
//! [`WorldEvent::LikeBatch`] journals the *input* batch verbatim, so some
//! of its items may be duplicates or rejected likes from terminated
//! accounts, and a [`WorldEvent::FriendshipBatch`] can carry edges that
//! already exist.
//!
//! [`EventFanout`] closes that gap. It owns a replica world, applies each
//! event through the world's acceptance-reporting public API (the same
//! methods the original run used, so the replica ends up byte-identical to
//! an [`OsnWorld::apply_event`] fold — asserted by tests), and emits one
//! [`DetectorUpdate`] per **accepted** mutation. Rejected mutations emit
//! nothing, which is exactly the filtering the batch detectors get for
//! free by reading the final ledger.
//!
//! The fanout also tracks a *watermark* — the maximum event timestamp seen
//! so far — which online feature extraction uses as "now" (the batch path
//! is called with the study-end clock; at end-of-stream the watermark
//! equals it).

use crate::log::WorldEvent;
use crate::world::OsnWorld;
use likelab_graph::{PageId, UserId};
use likelab_sim::SimTime;

/// One accepted world mutation, in application order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorUpdate {
    /// A new account exists (dense id, so detectors can size arrays).
    AccountAdded {
        /// The new account's id.
        user: UserId,
    },
    /// A new page exists.
    PageAdded {
        /// The new page's id.
        page: PageId,
    },
    /// A like was accepted into the ledger (not a duplicate, liker active).
    LikeAccepted {
        /// Who liked.
        user: UserId,
        /// What they liked.
        page: PageId,
        /// When.
        at: SimTime,
    },
    /// A friendship edge was added (not previously present).
    FriendshipAdded {
        /// One endpoint.
        a: UserId,
        /// The other endpoint.
        b: UserId,
    },
    /// An account's off-network friend count changed.
    OffNetworkChanged {
        /// Whose count changed.
        user: UserId,
    },
    /// An active account was terminated.
    AccountTerminated {
        /// Who was terminated.
        user: UserId,
    },
    /// A terminated account was reinstated.
    AccountReinstated {
        /// Who came back.
        user: UserId,
    },
}

/// Applies [`WorldEvent`]s to an owned replica world and reports each
/// accepted mutation. See the module docs.
///
/// ```
/// use likelab_osn::fanout::{DetectorUpdate, EventFanout};
/// use likelab_osn::demographics::{Country, Gender, Profile};
/// use likelab_osn::page::PageCategory;
/// use likelab_osn::{ActorClass, OsnWorld, PrivacySettings, WorldEvent};
/// use likelab_sim::SimTime;
///
/// // Record a tiny world: one account, one page, the same like twice.
/// let mut world = OsnWorld::new();
/// world.set_recording(true);
/// let profile = Profile {
///     gender: Gender::Female,
///     age: 31,
///     country: Country::Usa,
///     home_region: 0,
/// };
/// let privacy = PrivacySettings {
///     friend_list_public: true,
///     likes_public: true,
///     searchable: true,
/// };
/// let user = world.create_account(profile, ActorClass::Organic, privacy, SimTime::EPOCH);
/// let page = world.create_page("p", "", None, PageCategory::Background, SimTime::EPOCH);
/// world.record_like(user, page, SimTime::at_day(1));
/// world.record_like(user, page, SimTime::at_day(2)); // duplicate: rejected
/// let events = world.drain_events();
///
/// // Fan the recorded stream out: the duplicate emits no update.
/// let mut fanout = EventFanout::new();
/// let mut likes = 0;
/// for ev in &events {
///     fanout.apply(ev, |u| {
///         if matches!(u, DetectorUpdate::LikeAccepted { .. }) {
///             likes += 1;
///         }
///     });
/// }
/// assert_eq!(likes, 1);
/// assert_eq!(fanout.world().likes().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct EventFanout {
    world: OsnWorld,
    watermark: SimTime,
}

impl EventFanout {
    /// A fanout over a fresh, empty replica world.
    pub fn new() -> Self {
        EventFanout::default()
    }

    /// The replica world (read-only; every mutation goes through
    /// [`apply`](Self::apply)).
    pub fn world(&self) -> &OsnWorld {
        &self.world
    }

    /// The maximum event timestamp applied so far — online "now".
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    fn advance(&mut self, at: SimTime) {
        if at > self.watermark {
            self.watermark = at;
        }
    }

    /// Apply one event to the replica world and hand every accepted
    /// mutation to `sink`, in application order.
    pub fn apply(&mut self, ev: &WorldEvent, mut sink: impl FnMut(DetectorUpdate)) {
        match ev {
            WorldEvent::AccountCreated {
                profile,
                class,
                privacy,
                at,
            } => {
                let user = self.world.create_account(*profile, *class, *privacy, *at);
                self.advance(*at);
                sink(DetectorUpdate::AccountAdded { user });
            }
            WorldEvent::PageCreated {
                name,
                description,
                owner,
                category,
                at,
            } => {
                let page = self.world.create_page(
                    name.clone(),
                    description.clone(),
                    *owner,
                    *category,
                    *at,
                );
                self.advance(*at);
                sink(DetectorUpdate::PageAdded { page });
            }
            WorldEvent::Friendship { a, b } => {
                if self.world.add_friendship(*a, *b) {
                    sink(DetectorUpdate::FriendshipAdded { a: *a, b: *b });
                }
            }
            WorldEvent::FriendshipBatch { edges } => {
                // `apply_event` adds batch edges straight to the graph;
                // `add_friendship` is the same insertion plus the acceptance
                // bool we need here.
                for &(a, b) in edges {
                    if self.world.add_friendship(a, b) {
                        sink(DetectorUpdate::FriendshipAdded { a, b });
                    }
                }
            }
            WorldEvent::OffNetworkFriends { user, n } => {
                self.world.set_off_network_friends(*user, *n);
                sink(DetectorUpdate::OffNetworkChanged { user: *user });
            }
            WorldEvent::Like { user, page, at } => {
                self.advance(*at);
                if self.world.record_like(*user, *page, *at) {
                    sink(DetectorUpdate::LikeAccepted {
                        user: *user,
                        page: *page,
                        at: *at,
                    });
                }
            }
            WorldEvent::LikeBatch { likes } => {
                // The journal carries the *input* batch; re-filter per item.
                // `ingest_likes` documents that the per-item path produces
                // the identical ledger.
                for &(user, page, at) in likes {
                    self.advance(at);
                    if self.world.record_like(user, page, at) {
                        sink(DetectorUpdate::LikeAccepted { user, page, at });
                    }
                }
            }
            WorldEvent::Terminated { user, at } => {
                self.advance(*at);
                if self.world.terminate_account(*user, *at) {
                    sink(DetectorUpdate::AccountTerminated { user: *user });
                }
            }
            WorldEvent::Reinstated { user } => {
                if self.world.reinstate_account(*user) {
                    sink(DetectorUpdate::AccountReinstated { user: *user });
                }
            }
        }
    }

    /// Apply a whole event slice, collecting the updates.
    pub fn apply_all(&mut self, events: &[WorldEvent]) -> Vec<DetectorUpdate> {
        let mut out = Vec::new();
        for ev in events {
            self.apply(ev, |u| out.push(u));
        }
        out
    }

    /// Hand the replica world out (e.g. to run a batch detector over the
    /// final state without a clone).
    pub fn into_world(self) -> OsnWorld {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{ActorClass, PrivacySettings};
    use crate::demographics::{Country, Gender, Profile};
    use crate::page::PageCategory;
    use likelab_sim::Exec;

    fn profile() -> Profile {
        Profile {
            gender: Gender::Male,
            age: 24,
            country: Country::India,
            home_region: 1,
        }
    }

    fn privacy() -> PrivacySettings {
        PrivacySettings {
            friend_list_public: true,
            likes_public: true,
            searchable: true,
        }
    }

    fn seeded_events() -> Vec<WorldEvent> {
        let mut w = OsnWorld::new();
        w.set_recording(true);
        let users: Vec<UserId> = (0..6)
            .map(|i| {
                w.create_account(
                    profile(),
                    if i < 4 {
                        ActorClass::Organic
                    } else {
                        ActorClass::Bot(0)
                    },
                    privacy(),
                    SimTime::at_day(i),
                )
            })
            .collect();
        let pages: Vec<PageId> = (0..2)
            .map(|i| {
                w.create_page(
                    format!("p{i}"),
                    "",
                    None,
                    PageCategory::Background,
                    SimTime::EPOCH,
                )
            })
            .collect();
        w.add_friendship(users[0], users[1]);
        w.add_friendship(users[0], users[1]); // duplicate edge: rejected
        w.generate_friendships(|g| {
            let mut added = Vec::new();
            for &(a, b) in &[(users[1], users[2]), (users[0], users[1])] {
                if g.add_edge(a, b) {
                    added.push((a, b));
                }
            }
            added
        });
        w.set_off_network_friends(users[3], 40);
        w.record_like(users[0], pages[0], SimTime::at_day(7));
        w.record_like(users[0], pages[0], SimTime::at_day(8)); // dup: rejected
        w.ingest_likes(
            &[
                (users[1], pages[0], SimTime::at_day(7)),
                (users[1], pages[0], SimTime::at_day(7)), // in-batch dup
                (users[2], pages[1], SimTime::at_day(9)),
            ],
            Exec::Sequential,
        );
        w.terminate_account(users[4], SimTime::at_day(10));
        w.terminate_account(users[4], SimTime::at_day(11)); // idempotent
        w.record_like(users[4], pages[1], SimTime::at_day(12)); // dead: rejected
        w.reinstate_account(users[4]);
        w.reinstate_account(users[4]); // idempotent: rejected
        w.drain_events()
    }

    #[test]
    fn replica_matches_apply_event_fold() {
        let events = seeded_events();
        let mut folded = OsnWorld::new();
        for ev in &events {
            folded.apply_event(ev);
        }
        let mut fanout = EventFanout::new();
        fanout.apply_all(&events);
        let replica = fanout.world();

        assert_eq!(replica.account_count(), folded.account_count());
        assert_eq!(replica.page_count(), folded.page_count());
        assert_eq!(replica.likes().len(), folded.likes().len());
        assert_eq!(
            replica.friends().edge_count(),
            folded.friends().edge_count()
        );
        let a: Vec<_> = replica.likes().records().collect();
        let b: Vec<_> = folded.likes().records().collect();
        assert_eq!(a, b, "ledger order must match the fold");
        for u in replica.user_ids() {
            assert_eq!(replica.is_active(u), folded.is_active(u));
            assert_eq!(replica.total_friend_count(u), folded.total_friend_count(u));
        }
    }

    #[test]
    fn only_accepted_mutations_emit_updates() {
        let events = seeded_events();
        let mut fanout = EventFanout::new();
        let updates = fanout.apply_all(&events);
        let count = |f: fn(&DetectorUpdate) -> bool| updates.iter().filter(|u| f(u)).count();

        // The recorder already filters rejected singleton mutations out of
        // the stream; what this asserts is that the verbatim-journaled
        // LikeBatch (1 in-batch duplicate) is re-filtered by the fanout:
        // 3 accepted likes from 4 batch+single attempts.
        assert_eq!(
            count(|u| matches!(u, DetectorUpdate::AccountAdded { .. })),
            6
        );
        assert_eq!(count(|u| matches!(u, DetectorUpdate::PageAdded { .. })), 2);
        assert_eq!(
            count(|u| matches!(u, DetectorUpdate::FriendshipAdded { .. })),
            2
        );
        assert_eq!(
            count(|u| matches!(u, DetectorUpdate::LikeAccepted { .. })),
            3
        );
        assert_eq!(
            count(|u| matches!(u, DetectorUpdate::AccountTerminated { .. })),
            1
        );
        assert_eq!(
            count(|u| matches!(u, DetectorUpdate::AccountReinstated { .. })),
            1
        );
        assert_eq!(
            count(|u| matches!(u, DetectorUpdate::OffNetworkChanged { .. })),
            1
        );
    }

    #[test]
    fn watermark_tracks_the_maximum_event_time() {
        let events = seeded_events();
        let mut fanout = EventFanout::new();
        assert_eq!(fanout.watermark(), SimTime::EPOCH);
        fanout.apply_all(&events);
        // The rejected day-11/12 mutations never reached the journal, so
        // the last recorded timestamp is the day-10 termination.
        assert_eq!(fanout.watermark(), SimTime::at_day(10));
    }
}
