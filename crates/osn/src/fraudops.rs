//! The platform's anti-fraud operation: periodic termination sweeps.
//!
//! A month after the campaigns, the paper found 44 AuthenticLikes, 20
//! SocialFormula, and 9 MammothSocials accounts terminated — but only 1 from
//! BoostLikes and 11 from the Facebook campaigns. The interpretation: "bot-
//! like patterns are actually easy to detect", while stealth farms
//! "exhibit patterns closely resembling real users' behavior, thus making
//! fake like detection quite difficult".
//!
//! The sweep here scores *observable behaviour only* — burstiness of the
//! account's own like stream, friend count, account age, like volume —
//! never the ground-truth [`ActorClass`](crate::account::ActorClass). Bursty,
//! friend-poor, freshly created accounts accumulate hazard; embedded,
//! gradual accounts do not. The weights are calibrated so the monthly
//! termination rates land in the paper's regime.

use crate::world::OsnWorld;
use likelab_graph::UserId;
use likelab_sim::{Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Tunable sweep parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FraudOpsConfig {
    /// Baseline per-sweep termination hazard for any account.
    pub base_hazard: f64,
    /// Weight of like-stream burstiness (fraction of likes inside the
    /// account's densest window).
    pub burst_weight: f64,
    /// Weight of friend poverty (1 / (1 + degree / 10)).
    pub isolation_weight: f64,
    /// Extra hazard for accounts younger than `young_threshold`.
    pub youth_weight: f64,
    /// Account age below which the youth penalty applies.
    pub young_threshold: SimDuration,
    /// Weight of like volume (`min(1, like_count / volume_scale)`) — the
    /// strongest observable separator: disposable farm accounts carry
    /// thousands of likes, organic users a few dozen.
    pub volume_weight: f64,
    /// Like count at which the volume feature saturates.
    pub volume_scale: f64,
    /// Window for the burstiness feature.
    pub burst_window: SimDuration,
    /// Minimum likes before burstiness is considered meaningful.
    pub min_likes_for_burst: usize,
    /// Hazard cap per sweep.
    pub max_hazard: f64,
}

impl Default for FraudOpsConfig {
    fn default() -> Self {
        FraudOpsConfig {
            base_hazard: 2.0e-5,
            burst_weight: 3.0e-3,
            isolation_weight: 2.0e-3,
            youth_weight: 1.2e-3,
            young_threshold: SimDuration::days(150),
            volume_weight: 2.2e-3,
            volume_scale: 2_000.0,
            burst_window: SimDuration::hours(2),
            min_likes_for_burst: 5,
            max_hazard: 0.05,
        }
    }
}

/// Fraction of an account's likes that fall inside its densest
/// `window`-length stretch (0 when the account has fewer than `min_likes`).
/// A bot that fires its whole job list in two hours scores near 1.
pub fn like_stream_burstiness(
    world: &OsnWorld,
    user: UserId,
    window: SimDuration,
    min_likes: usize,
) -> f64 {
    burstiness_with_scratch(world, user, window, min_likes, &mut Vec::new())
}

/// [`like_stream_burstiness`] with a caller-owned time buffer, so the sweep
/// scores a million accounts without a per-account allocation. Reads only
/// the ledger's time column; most accounts' like streams arrive already
/// time-sorted (synthesis batches are globally time-ordered and the event
/// loop advances monotonically), so the sort is usually a no-op check.
fn burstiness_with_scratch(
    world: &OsnWorld,
    user: UserId,
    window: SimDuration,
    min_likes: usize,
    times: &mut Vec<SimTime>,
) -> f64 {
    times.clear();
    times.extend(world.likes().user_times(user));
    if times.len() < min_likes {
        return 0.0;
    }
    if times.windows(2).any(|w| w[0] > w[1]) {
        // Sorting bare timestamps by value yields the same sequence a
        // stable record sort keyed on `at` would (equal keys are
        // indistinguishable here), so the fast path stays byte-identical
        // to the historical `of_user_sorted` implementation.
        times.sort_unstable();
    }
    densest_window(times, window) as f64 / times.len() as f64
}

/// Likes inside the densest `window`-length stretch of a sorted time
/// sequence (1 for the empty sequence, preserving the historical
/// accumulator seed).
fn densest_window(times: &[SimTime], window: SimDuration) -> usize {
    let mut best = 1usize;
    let mut lo = 0usize;
    for hi in 0..times.len() {
        while times[hi].since(times[lo]) > window {
            lo += 1;
        }
        best = best.max(hi - lo + 1);
    }
    best
}

/// The hazard formula over precomputed features (the single definition both
/// the public per-account probe and the bulk sweep share, so they cannot
/// drift apart numerically).
fn hazard_value(
    c: &FraudOpsConfig,
    world: &OsnWorld,
    user: UserId,
    now: SimTime,
    burst: f64,
) -> f64 {
    let degree = world.total_friend_count(user) as f64;
    let isolation = 1.0 / (1.0 + degree / 10.0);
    let young = if now.saturating_since(world.created_at(user)) < c.young_threshold {
        1.0
    } else {
        0.0
    };
    let volume = (world.likes().user_like_count(user) as f64 / c.volume_scale).min(1.0);
    (c.base_hazard
        + c.burst_weight * burst
        + c.isolation_weight * isolation
        + c.youth_weight * young
        + c.volume_weight * volume)
        .min(c.max_hazard)
}

/// The anti-fraud operation.
///
/// Serializable so checkpoint/resume can freeze the sweep engine mid-run
/// (its RNG stream position is the only hidden state — the burstiness
/// states are skipped because they are a pure function of the ledger and
/// rebuild identically after resume).
#[derive(Clone, Debug)]
pub struct FraudOps {
    config: FraudOpsConfig,
    rng: Rng,
    /// Per-account incremental burstiness state. Sweeps fold only the
    /// ledger tail appended since the previous sweep instead of re-walking
    /// every changed account's full stream.
    burst: Vec<BurstState>,
    /// Ledger length already folded into `burst`.
    seen_likes: u32,
}

// Hand-rolled (de)serialization: checkpoints carry only `config` and `rng`,
// never the memo — it rebuilds identically from the ledger after resume.
impl Serialize for FraudOps {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("config".to_string(), self.config.to_value()),
            ("rng".to_string(), self.rng.to_value()),
        ])
    }
}

impl Deserialize for FraudOps {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(FraudOps {
            config: serde::field(v, "config")?,
            rng: serde::field(v, "rng")?,
            burst: Vec::new(),
            seen_likes: 0,
        })
    }
}

/// State sentinel: no like count can reach `u32::MAX` — a ledger would need
/// 2^32 records before any single account could, and its global `u32`
/// indices overflow first — so this marks "never computed". (The posting
/// codec itself now covers the full u32 domain; the bound comes from the
/// ledger's record count, not the codec.)
const BURST_UNCOMPUTED: u32 = u32::MAX;

/// Incremental burstiness of one account: the sliding `window` over a
/// time-sorted like stream, advanced append-by-append. Equivalent to the
/// full two-pointer recomputation because event-loop likes arrive in
/// monotonic time order per account; a rare out-of-order backfill flips
/// `sorted` off and the account falls back to full recomputation (memoized
/// on its like count) from then on.
#[derive(Clone, Debug)]
struct BurstState {
    /// Likes folded into this state ([`BURST_UNCOMPUTED`] = never visited).
    count: u32,
    /// Likes inside the densest `window` stretch seen so far.
    best: u32,
    /// Timestamp of the last folded like.
    last: SimTime,
    /// True while every folded like arrived in non-decreasing time order.
    sorted: bool,
    /// The live window: folded times within `window` of `last`.
    tail: std::collections::VecDeque<SimTime>,
}

impl Default for BurstState {
    fn default() -> Self {
        BurstState {
            count: BURST_UNCOMPUTED,
            best: 0,
            last: SimTime::EPOCH,
            sorted: true,
            tail: std::collections::VecDeque::new(),
        }
    }
}

impl BurstState {
    /// Fold one appended like. No-op until the state is initialized or
    /// after an out-of-order append demoted it to recompute mode (the
    /// stale `count` then forces [`initialize`][Self::initialize] on the
    /// next sweep visit).
    fn fold(&mut self, at: SimTime, window: SimDuration) {
        if self.count == BURST_UNCOMPUTED || !self.sorted {
            return;
        }
        if at < self.last {
            self.sorted = false;
            self.tail.clear();
            return;
        }
        self.tail.push_back(at);
        while at.since(self.tail[0]) > window {
            self.tail.pop_front();
        }
        self.best = self.best.max(self.tail.len() as u32);
        self.last = at;
        self.count += 1;
    }

    /// Full rebuild from the account's stream — the two-pointer sweep the
    /// incremental fold continues. Captures the final window suffix so
    /// later appends resume exactly where the batch pass stopped.
    fn initialize(
        &mut self,
        world: &OsnWorld,
        user: UserId,
        window: SimDuration,
        times: &mut Vec<SimTime>,
    ) {
        times.clear();
        times.extend(world.likes().user_times(user));
        self.sorted = !times.windows(2).any(|w| w[0] > w[1]);
        if !self.sorted {
            times.sort_unstable();
        }
        self.count = times.len() as u32;
        self.best = densest_window(times, window) as u32;
        self.tail.clear();
        if self.sorted {
            self.last = times.last().copied().unwrap_or(SimTime::EPOCH);
            let mut lo = times.len();
            while lo > 0 && self.last.since(times[lo - 1]) <= window {
                lo -= 1;
            }
            self.tail.extend(times[lo..].iter().copied());
        }
    }

    /// The burstiness value — `best / count` under the historical gating,
    /// bit-identical to [`like_stream_burstiness`] on the same stream.
    fn value(&self, min_likes: usize) -> f64 {
        let n = self.count as usize;
        if n < min_likes {
            return 0.0;
        }
        self.best.max(1) as f64 / n as f64
    }
}

impl FraudOps {
    /// A sweep engine with its own RNG stream.
    pub fn new(config: FraudOpsConfig, rng: Rng) -> Self {
        FraudOps {
            config,
            rng,
            burst: Vec::new(),
            seen_likes: 0,
        }
    }

    /// Per-sweep hazard of one account at time `now`, from observable
    /// behaviour only.
    pub fn hazard(&self, world: &OsnWorld, user: UserId, now: SimTime) -> f64 {
        let c = &self.config;
        let burst = like_stream_burstiness(world, user, c.burst_window, c.min_likes_for_burst);
        hazard_value(c, world, user, now, burst)
    }

    /// Run one sweep over all active accounts, terminating by hazard.
    /// Returns the terminated ids.
    ///
    /// Scans the status column directly; an account terminated earlier in
    /// the same sweep cannot re-enter the candidate set, so the single pass
    /// draws the exact RNG sequence the old collect-then-score loop did.
    pub fn sweep(&mut self, world: &mut OsnWorld, now: SimTime) -> Vec<UserId> {
        let n = world.account_count();
        if self.burst.len() < n {
            self.burst.resize_with(n, BurstState::default);
        }
        let window = self.config.burst_window;
        // Fold the ledger tail appended since the previous sweep — O(new
        // likes), not O(changed accounts × stream length). Zips the user
        // and time columns directly; the page column is never touched.
        let tail_users = world.likes().users_from(self.seen_likes);
        let tail_times = world.likes().times_from(self.seen_likes);
        for (&user, &at) in tail_users.iter().zip(tail_times) {
            self.burst[user.idx()].fold(at, window);
        }
        self.seen_likes = world.likes().len() as u32;
        let c = &self.config;
        let mut terminated = Vec::new();
        let mut times: Vec<SimTime> = Vec::new();
        for i in 0..n as u32 {
            let u = UserId(i);
            if !world.is_active(u) {
                continue;
            }
            let count = world.likes().user_like_count(u) as u32;
            let st = &mut self.burst[i as usize];
            if st.count != count {
                // First visit, or an out-of-order backfill demoted the
                // state: rebuild from the full stream (memoized on count).
                st.initialize(world, u, window, &mut times);
            }
            let burst = st.value(c.min_likes_for_burst);
            let h = hazard_value(c, world, u, now, burst);
            if self.rng.chance(h) {
                world.terminate_account(u, now);
                terminated.push(u);
            }
        }
        terminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{ActorClass, PrivacySettings};
    use crate::demographics::{Country, Gender, Profile};
    use crate::page::PageCategory;
    use likelab_graph::PageId;

    fn privacy() -> PrivacySettings {
        PrivacySettings {
            friend_list_public: true,
            likes_public: true,
            searchable: true,
        }
    }

    fn profile() -> Profile {
        Profile {
            gender: Gender::Male,
            age: 20,
            country: Country::Turkey,
            home_region: 0,
        }
    }

    /// A world with one bursty friendless bot (u0) and one embedded
    /// gradual user (u1).
    fn contrast_world() -> OsnWorld {
        let mut w = OsnWorld::new();
        let bot = w.create_account(
            profile(),
            ActorClass::Bot(0),
            privacy(),
            SimTime::at_day(395),
        );
        let real = w.create_account(profile(), ActorClass::Organic, privacy(), SimTime::EPOCH);
        // Friends for the real user.
        for _ in 0..40 {
            let f = w.create_account(profile(), ActorClass::Organic, privacy(), SimTime::EPOCH);
            w.add_friendship(real, f);
        }
        // Pages.
        let pages: Vec<PageId> = (0..30)
            .map(|i| {
                w.create_page(
                    format!("p{i}"),
                    "",
                    None,
                    PageCategory::Background,
                    SimTime::EPOCH,
                )
            })
            .collect();
        // Bot: 30 likes within one hour on day 400.
        for (i, p) in pages.iter().enumerate() {
            w.record_like(
                bot,
                *p,
                SimTime::at_day(400) + SimDuration::minutes(2 * i as u64),
            );
        }
        // Real user: 30 likes spread over 300 days.
        for (i, p) in pages.iter().enumerate() {
            w.record_like(real, *p, SimTime::at_day(100 + 10 * i as u64));
        }
        w
    }

    #[test]
    fn burstiness_separates_bot_from_real() {
        let w = contrast_world();
        let b = like_stream_burstiness(&w, UserId(0), SimDuration::hours(2), 5);
        let r = like_stream_burstiness(&w, UserId(1), SimDuration::hours(2), 5);
        assert!(b > 0.9, "bot burstiness {b}");
        assert!(r < 0.1, "real burstiness {r}");
    }

    #[test]
    fn burstiness_needs_minimum_volume() {
        let mut w = OsnWorld::new();
        let u = w.create_account(profile(), ActorClass::Organic, privacy(), SimTime::EPOCH);
        let p = w.create_page("p", "", None, PageCategory::Background, SimTime::EPOCH);
        w.record_like(u, p, SimTime::EPOCH);
        assert_eq!(like_stream_burstiness(&w, u, SimDuration::hours(2), 5), 0.0);
    }

    #[test]
    fn hazard_orders_bot_above_real() {
        let w = contrast_world();
        let ops = FraudOps::new(FraudOpsConfig::default(), Rng::seed_from_u64(1));
        let now = SimTime::at_day(410);
        let hb = ops.hazard(&w, UserId(0), now);
        let hr = ops.hazard(&w, UserId(1), now);
        assert!(
            hb > hr * 5.0,
            "bot hazard {hb} should dwarf real hazard {hr}"
        );
    }

    #[test]
    fn sweeps_terminate_bots_far_more_often() {
        // Monte-Carlo over many fresh worlds: the bot should be terminated
        // at a much higher rate than the embedded user over ~4 sweeps.
        let mut bot_terms = 0;
        let mut real_terms = 0;
        for seed in 0..300 {
            let mut w = contrast_world();
            let mut ops = FraudOps::new(FraudOpsConfig::default(), Rng::seed_from_u64(seed));
            for week in 0..4 {
                ops.sweep(&mut w, SimTime::at_day(403 + week * 7));
            }
            if !w.account(UserId(0)).is_active() {
                bot_terms += 1;
            }
            if !w.account(UserId(1)).is_active() {
                real_terms += 1;
            }
        }
        assert!(
            bot_terms >= 2,
            "bots should get caught sometimes: {bot_terms}/300"
        );
        assert!(
            bot_terms > real_terms * 3,
            "bot {bot_terms} vs real {real_terms}"
        );
    }

    #[test]
    fn sweep_skips_already_terminated() {
        let mut w = contrast_world();
        w.terminate_account(UserId(0), SimTime::at_day(401));
        let mut ops = FraudOps::new(
            FraudOpsConfig {
                base_hazard: 1.0,
                ..FraudOpsConfig::default()
            },
            Rng::seed_from_u64(1),
        );
        let terminated = ops.sweep(&mut w, SimTime::at_day(402));
        assert!(!terminated.contains(&UserId(0)));
    }

    #[test]
    fn sweep_burst_cache_is_transparent() {
        // Same seed, same worlds: sweeps with warm incremental state must
        // terminate exactly the accounts a cold (post-resume) engine does,
        // with fresh likes landing between sweeps to exercise the fold.
        let mut wa = contrast_world();
        let mut wb = contrast_world();
        let mut warm = FraudOps::new(FraudOpsConfig::default(), Rng::seed_from_u64(7));
        let mut cold = FraudOps::new(FraudOpsConfig::default(), Rng::seed_from_u64(7));
        for week in 0..4u64 {
            let ta = warm.sweep(&mut wa, SimTime::at_day(403 + week * 7));
            cold.burst.clear();
            cold.seen_likes = 0;
            let tb = cold.sweep(&mut wb, SimTime::at_day(403 + week * 7));
            assert_eq!(ta, tb, "week {week}");
            for (w, ops_hazard) in [(&mut wa, &warm), (&mut wb, &cold)] {
                let p = w.create_page(
                    format!("new{week}"),
                    "",
                    None,
                    PageCategory::Background,
                    SimTime::at_day(404 + week * 7),
                );
                w.record_like(UserId(0), p, SimTime::at_day(404 + week * 7));
                // Uncached probe agrees with whatever the next sweep sees.
                let _ = ops_hazard.hazard(w, UserId(0), SimTime::at_day(405 + week * 7));
            }
        }
    }

    #[test]
    fn hazard_is_capped() {
        let w = contrast_world();
        let ops = FraudOps::new(
            FraudOpsConfig {
                burst_weight: 10.0,
                ..FraudOpsConfig::default()
            },
            Rng::seed_from_u64(1),
        );
        let h = ops.hazard(&w, UserId(0), SimTime::at_day(410));
        assert!(h <= FraudOpsConfig::default().max_hazard);
    }
}
