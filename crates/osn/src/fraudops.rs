//! The platform's anti-fraud operation: periodic termination sweeps.
//!
//! A month after the campaigns, the paper found 44 AuthenticLikes, 20
//! SocialFormula, and 9 MammothSocials accounts terminated — but only 1 from
//! BoostLikes and 11 from the Facebook campaigns. The interpretation: "bot-
//! like patterns are actually easy to detect", while stealth farms
//! "exhibit patterns closely resembling real users' behavior, thus making
//! fake like detection quite difficult".
//!
//! The sweep here scores *observable behaviour only* — burstiness of the
//! account's own like stream, friend count, account age, like volume —
//! never the ground-truth [`ActorClass`](crate::account::ActorClass). Bursty,
//! friend-poor, freshly created accounts accumulate hazard; embedded,
//! gradual accounts do not. The weights are calibrated so the monthly
//! termination rates land in the paper's regime.

use crate::world::OsnWorld;
use likelab_graph::UserId;
use likelab_sim::{Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Tunable sweep parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FraudOpsConfig {
    /// Baseline per-sweep termination hazard for any account.
    pub base_hazard: f64,
    /// Weight of like-stream burstiness (fraction of likes inside the
    /// account's densest window).
    pub burst_weight: f64,
    /// Weight of friend poverty (1 / (1 + degree / 10)).
    pub isolation_weight: f64,
    /// Extra hazard for accounts younger than `young_threshold`.
    pub youth_weight: f64,
    /// Account age below which the youth penalty applies.
    pub young_threshold: SimDuration,
    /// Weight of like volume (`min(1, like_count / volume_scale)`) — the
    /// strongest observable separator: disposable farm accounts carry
    /// thousands of likes, organic users a few dozen.
    pub volume_weight: f64,
    /// Like count at which the volume feature saturates.
    pub volume_scale: f64,
    /// Window for the burstiness feature.
    pub burst_window: SimDuration,
    /// Minimum likes before burstiness is considered meaningful.
    pub min_likes_for_burst: usize,
    /// Hazard cap per sweep.
    pub max_hazard: f64,
}

impl Default for FraudOpsConfig {
    fn default() -> Self {
        FraudOpsConfig {
            base_hazard: 2.0e-5,
            burst_weight: 3.0e-3,
            isolation_weight: 2.0e-3,
            youth_weight: 1.2e-3,
            young_threshold: SimDuration::days(150),
            volume_weight: 2.2e-3,
            volume_scale: 2_000.0,
            burst_window: SimDuration::hours(2),
            min_likes_for_burst: 5,
            max_hazard: 0.05,
        }
    }
}

/// Fraction of an account's likes that fall inside its densest
/// `window`-length stretch (0 when the account has fewer than `min_likes`).
/// A bot that fires its whole job list in two hours scores near 1.
pub fn like_stream_burstiness(
    world: &OsnWorld,
    user: UserId,
    window: SimDuration,
    min_likes: usize,
) -> f64 {
    let times: Vec<SimTime> = world
        .likes()
        .of_user_sorted(user)
        .iter()
        .map(|r| r.at)
        .collect();
    if times.len() < min_likes {
        return 0.0;
    }
    let mut best = 1usize;
    let mut lo = 0usize;
    for hi in 0..times.len() {
        while times[hi].since(times[lo]) > window {
            lo += 1;
        }
        best = best.max(hi - lo + 1);
    }
    best as f64 / times.len() as f64
}

/// The anti-fraud operation.
///
/// Serializable so checkpoint/resume can freeze the sweep engine mid-run
/// (its RNG stream position is the only hidden state).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FraudOps {
    config: FraudOpsConfig,
    rng: Rng,
}

impl FraudOps {
    /// A sweep engine with its own RNG stream.
    pub fn new(config: FraudOpsConfig, rng: Rng) -> Self {
        FraudOps { config, rng }
    }

    /// Per-sweep hazard of one account at time `now`, from observable
    /// behaviour only.
    pub fn hazard(&self, world: &OsnWorld, user: UserId, now: SimTime) -> f64 {
        let c = &self.config;
        let acct = world.account(user);
        let burst = like_stream_burstiness(world, user, c.burst_window, c.min_likes_for_burst);
        let degree = world.total_friend_count(user) as f64;
        let isolation = 1.0 / (1.0 + degree / 10.0);
        let young = if now.saturating_since(acct.created_at) < c.young_threshold {
            1.0
        } else {
            0.0
        };
        let volume = (world.likes().user_like_count(user) as f64 / c.volume_scale).min(1.0);
        (c.base_hazard
            + c.burst_weight * burst
            + c.isolation_weight * isolation
            + c.youth_weight * young
            + c.volume_weight * volume)
            .min(c.max_hazard)
    }

    /// Run one sweep over all active accounts, terminating by hazard.
    /// Returns the terminated ids.
    pub fn sweep(&mut self, world: &mut OsnWorld, now: SimTime) -> Vec<UserId> {
        let candidates: Vec<UserId> = world
            .user_ids()
            .filter(|u| world.account(*u).is_active())
            .collect();
        let mut terminated = Vec::new();
        for u in candidates {
            let h = self.hazard(world, u, now);
            if self.rng.chance(h) {
                world.terminate_account(u, now);
                terminated.push(u);
            }
        }
        terminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{ActorClass, PrivacySettings};
    use crate::demographics::{Country, Gender, Profile};
    use crate::page::PageCategory;
    use likelab_graph::PageId;

    fn privacy() -> PrivacySettings {
        PrivacySettings {
            friend_list_public: true,
            likes_public: true,
            searchable: true,
        }
    }

    fn profile() -> Profile {
        Profile {
            gender: Gender::Male,
            age: 20,
            country: Country::Turkey,
            home_region: 0,
        }
    }

    /// A world with one bursty friendless bot (u0) and one embedded
    /// gradual user (u1).
    fn contrast_world() -> OsnWorld {
        let mut w = OsnWorld::new();
        let bot = w.create_account(
            profile(),
            ActorClass::Bot(0),
            privacy(),
            SimTime::at_day(395),
        );
        let real = w.create_account(profile(), ActorClass::Organic, privacy(), SimTime::EPOCH);
        // Friends for the real user.
        for _ in 0..40 {
            let f = w.create_account(profile(), ActorClass::Organic, privacy(), SimTime::EPOCH);
            w.add_friendship(real, f);
        }
        // Pages.
        let pages: Vec<PageId> = (0..30)
            .map(|i| {
                w.create_page(
                    format!("p{i}"),
                    "",
                    None,
                    PageCategory::Background,
                    SimTime::EPOCH,
                )
            })
            .collect();
        // Bot: 30 likes within one hour on day 400.
        for (i, p) in pages.iter().enumerate() {
            w.record_like(
                bot,
                *p,
                SimTime::at_day(400) + SimDuration::minutes(2 * i as u64),
            );
        }
        // Real user: 30 likes spread over 300 days.
        for (i, p) in pages.iter().enumerate() {
            w.record_like(real, *p, SimTime::at_day(100 + 10 * i as u64));
        }
        w
    }

    #[test]
    fn burstiness_separates_bot_from_real() {
        let w = contrast_world();
        let b = like_stream_burstiness(&w, UserId(0), SimDuration::hours(2), 5);
        let r = like_stream_burstiness(&w, UserId(1), SimDuration::hours(2), 5);
        assert!(b > 0.9, "bot burstiness {b}");
        assert!(r < 0.1, "real burstiness {r}");
    }

    #[test]
    fn burstiness_needs_minimum_volume() {
        let mut w = OsnWorld::new();
        let u = w.create_account(profile(), ActorClass::Organic, privacy(), SimTime::EPOCH);
        let p = w.create_page("p", "", None, PageCategory::Background, SimTime::EPOCH);
        w.record_like(u, p, SimTime::EPOCH);
        assert_eq!(like_stream_burstiness(&w, u, SimDuration::hours(2), 5), 0.0);
    }

    #[test]
    fn hazard_orders_bot_above_real() {
        let w = contrast_world();
        let ops = FraudOps::new(FraudOpsConfig::default(), Rng::seed_from_u64(1));
        let now = SimTime::at_day(410);
        let hb = ops.hazard(&w, UserId(0), now);
        let hr = ops.hazard(&w, UserId(1), now);
        assert!(
            hb > hr * 5.0,
            "bot hazard {hb} should dwarf real hazard {hr}"
        );
    }

    #[test]
    fn sweeps_terminate_bots_far_more_often() {
        // Monte-Carlo over many fresh worlds: the bot should be terminated
        // at a much higher rate than the embedded user over ~4 sweeps.
        let mut bot_terms = 0;
        let mut real_terms = 0;
        for seed in 0..300 {
            let mut w = contrast_world();
            let mut ops = FraudOps::new(FraudOpsConfig::default(), Rng::seed_from_u64(seed));
            for week in 0..4 {
                ops.sweep(&mut w, SimTime::at_day(403 + week * 7));
            }
            if !w.account(UserId(0)).is_active() {
                bot_terms += 1;
            }
            if !w.account(UserId(1)).is_active() {
                real_terms += 1;
            }
        }
        assert!(
            bot_terms >= 2,
            "bots should get caught sometimes: {bot_terms}/300"
        );
        assert!(
            bot_terms > real_terms * 3,
            "bot {bot_terms} vs real {real_terms}"
        );
    }

    #[test]
    fn sweep_skips_already_terminated() {
        let mut w = contrast_world();
        w.terminate_account(UserId(0), SimTime::at_day(401));
        let mut ops = FraudOps::new(
            FraudOpsConfig {
                base_hazard: 1.0,
                ..FraudOpsConfig::default()
            },
            Rng::seed_from_u64(1),
        );
        let terminated = ops.sweep(&mut w, SimTime::at_day(402));
        assert!(!terminated.contains(&UserId(0)));
    }

    #[test]
    fn hazard_is_capped() {
        let w = contrast_world();
        let ops = FraudOps::new(
            FraudOpsConfig {
                burst_weight: 10.0,
                ..FraudOpsConfig::default()
            },
            Rng::seed_from_u64(1),
        );
        let h = ops.hazard(&w, UserId(0), SimTime::at_day(410));
        assert!(h <= FraudOpsConfig::default().max_hazard);
    }
}
