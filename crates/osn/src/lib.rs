//! # likelab-osn — the simulated social platform
//!
//! Everything the honeypot study needs a platform *for*, rebuilt as a
//! deterministic substrate:
//!
//! - accounts with demographics, privacy settings, and ground-truth actor
//!   class ([`account`], [`demographics`]);
//! - pages and the timestamped like ledger ([`page`], [`likes`]);
//! - the organic population synthesizer — community-structured friendships,
//!   Zipf background pages, baseline like histories, and the click-prone
//!   segment legitimate ads actually reach ([`population`]);
//! - the page-like ad platform with per-country pricing and winner-take-most
//!   worldwide allocation ([`ads`], [`auction`]);
//! - the page-admin reports tool that aggregates liker demographics from
//!   public *and* private attributes ([`reports`]);
//! - the privacy-enforcing public crawl surface with fault injection
//!   ([`crawl_api`]) and the public directory ([`directory`]);
//! - the anti-fraud termination sweep that catches bursty, friend-poor
//!   accounts far more often than embedded ones ([`fraudops`]);
//! - ongoing organic background activity ([`organic`]);
//! - page posts and fan engagement — the economics that make bought likes
//!   worthless ([`posts`]).
//!
//! All of it hangs off one mutable [`OsnWorld`].

pub mod account;
pub mod ads;
pub mod auction;
pub mod crawl_api;
pub mod demographics;
pub mod directory;
pub mod fanout;
pub mod fraudops;
pub mod likes;
pub mod log;
pub mod organic;
pub mod page;
pub mod population;
pub mod posting;
pub mod posts;
pub mod reports;
pub mod store;
pub mod world;

pub use account::{Account, AccountStatus, ActorClass, PrivacySettings};
pub use ads::{AdCampaignSpec, PlannedLike, Targeting};
pub use auction::AdMarket;
pub use crawl_api::{
    CrawlApi, CrawlConfig, CrawlError, CrawlStats, FaultProfile, OutageRegime, PublicProfile,
    RateLimitRegime, RetryPolicy,
};
pub use demographics::{AgeBracket, Country, Gender, GeoBucket, Profile};
pub use fanout::{DetectorUpdate, EventFanout};
pub use fraudops::{FraudOps, FraudOpsConfig};
pub use likes::{LikeColumns, LikeLedger, LikeRecord};
pub use log::WorldEvent;
pub use page::{Page, PageCategory};
pub use population::{Population, PopulationConfig};
pub use posts::{simulate_engagement, EngagementModel, EngagementReport};
pub use reports::AudienceReport;
pub use store::AccountStore;
pub use world::OsnWorld;
