//! The like ledger: every like with its timestamp, indexed from both sides.
//!
//! The ledger is the platform's authoritative record. The temporal analysis
//! (Figure 2) and the burst detector both consume chronological per-page
//! streams; the page-like analysis (Figure 4) consumes per-user counts.
//!
//! ## Layout
//!
//! At million-account scale the ledger holds tens of millions of records, so
//! storage is struct-of-arrays (`users`/`pages`/`times` columns in global
//! insertion order) and both indexes are bit-packed
//! [`PostingList`](crate::posting::PostingList)s of global record indices —
//! strictly increasing by construction, so they delta-encode to a fraction
//! of a raw `Vec<u32>` and decode through allocation-free iterators. The
//! per-page index is **sharded by page-id range**: each shard owns
//! [`SHARD_PAGES`] consecutive pages and its own local posting lists. Bulk
//! ingestion ([`LikeLedger::ingest_columns`]) takes the batch as
//! [`LikeColumns`] — the SoA twin of a row-tuple slice — dedups per user,
//! memcpys the accepted column regions onto the ledger, and groups accepted
//! records per shard through [`likelab_sim::parallel`]; report aggregation
//! can walk shards independently. Nothing materializes a global
//! intermediate `Vec` per page, and single-column accessors
//! ([`page_users`](LikeLedger::page_users),
//! [`users_from`](LikeLedger::users_from), …) let scan-heavy consumers read
//! just the fields they fold.
//!
//! Membership (has `user` already liked `page`?) is answered by a per-user
//! sorted page list with a small insertion overlay, merged amortized-O(1)
//! per insert — the heavy likers the paper describes (median 600–1000 page
//! likes) no longer pay a full-array memmove per like.
//!
//! Every accessor hands out [`LikeRecord`]s **by value** (assembled from the
//! columns on demand), so iteration reads the same as it did when records
//! were stored as an array of structs.

use crate::posting::PostingList;
use likelab_graph::{PageId, UserId};
use likelab_sim::parallel::{parallel_map, Exec};
use likelab_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One like event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LikeRecord {
    /// Who liked.
    pub user: UserId,
    /// What they liked.
    pub page: PageId,
    /// When.
    pub at: SimTime,
}

/// A column batch of likes: the struct-of-arrays twin of
/// `&[(UserId, PageId, SimTime)]`, one entry per batch position.
///
/// Synthesis and the coalesced event loop build these directly so batches
/// flow into the ledger's columns without a row-tuple detour — the accepted
/// region of each column memcpys straight onto the ledger. The three
/// columns always have equal lengths.
#[derive(Clone, Debug, Default)]
pub struct LikeColumns {
    /// Who liked, per batch position.
    pub users: Vec<UserId>,
    /// What they liked, per batch position.
    pub pages: Vec<PageId>,
    /// When, per batch position.
    pub times: Vec<SimTime>,
}

impl LikeColumns {
    /// Empty columns with room for `n` likes each.
    pub fn with_capacity(n: usize) -> Self {
        LikeColumns {
            users: Vec::with_capacity(n),
            pages: Vec::with_capacity(n),
            times: Vec::with_capacity(n),
        }
    }

    /// Build columns from row tuples (tests and the AoS compatibility
    /// wrapper).
    pub fn from_rows(rows: &[(UserId, PageId, SimTime)]) -> Self {
        let mut cols = LikeColumns::with_capacity(rows.len());
        for &(user, page, at) in rows {
            cols.push(user, page, at);
        }
        cols
    }

    /// Number of likes in the batch.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when the batch holds no likes.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Drop all likes, keeping the allocations.
    pub fn clear(&mut self) {
        self.users.clear();
        self.pages.clear();
        self.times.clear();
    }

    /// Append one like.
    pub fn push(&mut self, user: UserId, page: PageId, at: SimTime) {
        self.users.push(user);
        self.pages.push(page);
        self.times.push(at);
    }

    /// Zip the columns back into row tuples (journaling and tests).
    pub fn rows(&self) -> impl Iterator<Item = (UserId, PageId, SimTime)> + '_ {
        (0..self.len()).map(move |i| (self.users[i], self.pages[i], self.times[i]))
    }
}

/// Pages per index shard. Small enough that a study's background-page count
/// spreads over many shards, large enough that a shard's posting lists
/// amortize per-shard bookkeeping.
pub const SHARD_PAGES: usize = 4096;

/// One page-range shard of the per-page index: packed posting lists (global
/// record indices, in insertion order) for the pages in this shard's range.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct Shard {
    by_page: Vec<PostingList>,
}

/// The sorted page set of one user: a compact sorted base plus a small
/// sorted overlay absorbing recent inserts (same shape as the friend
/// graph's CSR+overlay). Keeps duplicate checks `O(log d)` and inserts
/// amortized `O(1)` memmove-wise even for ten-thousand-like accounts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct UserPages {
    base: Vec<u32>,
    overlay: Vec<u32>,
}

/// The overlay merges into the base once it holds this many entries and at
/// least a quarter of the base's size (the floor keeps light users from
/// merging on every insert).
const MERGE_FLOOR: usize = 32;

impl UserPages {
    /// Insert `p`; returns false when already present.
    fn insert(&mut self, p: u32) -> bool {
        if self.base.binary_search(&p).is_ok() {
            return false;
        }
        match self.overlay.binary_search(&p) {
            Ok(_) => false,
            Err(pos) => {
                self.overlay.insert(pos, p);
                if self.overlay.len() >= MERGE_FLOOR && self.overlay.len() * 4 >= self.base.len() {
                    self.merge();
                }
                true
            }
        }
    }

    /// Fold the overlay into the base (two-pointer merge of disjoint sorted
    /// lists).
    fn merge(&mut self) {
        let mut merged = Vec::with_capacity(self.base.len() + self.overlay.len());
        let (mut i, mut j) = (0, 0);
        while i < self.base.len() && j < self.overlay.len() {
            if self.base[i] < self.overlay[j] {
                merged.push(self.base[i]);
                i += 1;
            } else {
                merged.push(self.overlay[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.base[i..]);
        merged.extend_from_slice(&self.overlay[j..]);
        self.base = merged;
        self.overlay.clear();
    }

    /// Batch-absorb a sorted candidate list. `cand` holds `(page, pos)`
    /// pairs sorted ascending (so equal pages are adjacent, earliest batch
    /// position first). For each page run: if the page is already in the
    /// set every occurrence is rejected; otherwise exactly the first
    /// occurrence is accepted (`accept[pos] = true`) — the same decisions a
    /// positional loop of [`insert`][Self::insert] calls would make. When
    /// anything was accepted the set is rebuilt as a flat sorted base with
    /// an empty overlay (`merged` is reusable scratch).
    fn absorb_sorted(&mut self, cand: &[(u32, u32)], accept: &mut [bool], merged: &mut Vec<u32>) {
        if self.base.is_empty() && self.overlay.is_empty() {
            // Fresh set — the synthesis common case (every user's first
            // batch). There is no history to merge against, so skip the
            // two-pointer scaffolding: accept the first occurrence of each
            // page run and install the deduped pages as the base directly.
            merged.clear();
            let mut k = 0usize;
            while k < cand.len() {
                let page = cand[k].0;
                accept[cand[k].1 as usize] = true;
                merged.push(page);
                while k < cand.len() && cand[k].0 == page {
                    k += 1;
                }
            }
            self.base.extend_from_slice(merged);
            return;
        }
        merged.clear();
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        let mut accepted_any = false;
        while k < cand.len() {
            let page = cand[k].0;
            // Drain existing entries below the candidate page.
            loop {
                let next_existing = match (self.base.get(i), self.overlay.get(j)) {
                    (Some(&a), Some(&b)) => {
                        if a < b {
                            a
                        } else {
                            b
                        }
                    }
                    (Some(&a), None) => a,
                    (None, Some(&b)) => b,
                    (None, None) => break,
                };
                if next_existing >= page {
                    break;
                }
                merged.push(next_existing);
                if self.base.get(i) == Some(&next_existing) {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            let present = self.base.get(i) == Some(&page) || self.overlay.get(j) == Some(&page);
            if !present {
                accept[cand[k].1 as usize] = true;
                accepted_any = true;
                merged.push(page);
            }
            // Skip the whole equal-page run (later occurrences are dups).
            while k < cand.len() && cand[k].0 == page {
                k += 1;
            }
        }
        if !accepted_any {
            return; // nothing changed; keep the existing base/overlay split
        }
        // Drain the remaining existing entries.
        while let Some(v) = match (self.base.get(i), self.overlay.get(j)) {
            (Some(&a), Some(&b)) => Some(if a < b { a } else { b }),
            (Some(&a), None) => Some(a),
            (None, Some(&b)) => Some(b),
            (None, None) => None,
        } {
            merged.push(v);
            if self.base.get(i) == Some(&v) {
                i += 1;
            } else {
                j += 1;
            }
        }
        self.base.clear();
        self.base.extend_from_slice(merged);
        self.overlay.clear();
    }

    /// The pages in ascending id order.
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let mut i = 0;
        let mut j = 0;
        std::iter::from_fn(move || match (self.base.get(i), self.overlay.get(j)) {
            (Some(&a), Some(&b)) if a < b => {
                i += 1;
                Some(a)
            }
            (_, Some(&b)) => {
                j += 1;
                Some(b)
            }
            (Some(&a), None) => {
                i += 1;
                Some(a)
            }
            (None, None) => None,
        })
    }
}

/// The append-only like ledger with both-side indexes. See the module docs
/// for the sharded, bit-packed struct-of-arrays layout.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LikeLedger {
    users: Vec<UserId>,
    pages: Vec<PageId>,
    times: Vec<SimTime>,
    by_user: Vec<PostingList>,
    user_pages: Vec<UserPages>,
    shards: Vec<Shard>,
    n_pages: usize,
}

impl LikeLedger {
    /// An empty ledger sized for `users` and `pages`.
    pub fn new(users: usize, pages: usize) -> Self {
        let mut ledger = LikeLedger {
            by_user: vec![PostingList::new(); users],
            user_pages: vec![UserPages::default(); users],
            ..LikeLedger::default()
        };
        ledger.grow_shards(pages);
        ledger
    }

    /// Grow the user side.
    pub fn ensure_users(&mut self, n: usize) {
        if n > self.by_user.len() {
            self.by_user.resize(n, PostingList::new());
            self.user_pages.resize(n, UserPages::default());
        }
    }

    /// Grow the page side.
    pub fn ensure_pages(&mut self, n: usize) {
        self.grow_shards(n);
    }

    /// Size the shard list (and the tail shard's posting lists) for `n`
    /// pages.
    fn grow_shards(&mut self, n: usize) {
        if n <= self.n_pages {
            return;
        }
        self.n_pages = n;
        let shard_count = n.div_ceil(SHARD_PAGES);
        self.shards.resize_with(shard_count, Shard::default);
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let covered = (n - s * SHARD_PAGES).min(SHARD_PAGES);
            if covered > shard.by_page.len() {
                shard.by_page.resize(covered, PostingList::new());
            }
        }
    }

    /// Record a like at time `at`. Duplicate (user, page) likes are ignored.
    /// Returns true when the like was new.
    ///
    /// Arrival order need not be chronological — farm accounts created
    /// mid-study backfill their camouflage histories with past timestamps.
    /// Use the `*_sorted` accessors when time order matters.
    pub fn record(&mut self, user: UserId, page: PageId, at: SimTime) -> bool {
        if !self.user_pages[user.idx()].insert(page.0) {
            return false;
        }
        let idx = self.users.len() as u32;
        self.users.push(user);
        self.pages.push(page);
        self.times.push(at);
        self.by_user[user.idx()].push(idx);
        self.shards[page.idx() / SHARD_PAGES].by_page[page.idx() % SHARD_PAGES].push(idx);
        true
    }

    /// Bulk-record a batch of likes, indexing pages per shard in parallel.
    /// Returns how many were new (duplicates — within the batch or against
    /// history — are ignored, first occurrence wins, exactly as if each item
    /// had gone through [`record`][Self::record] in order).
    ///
    /// The result is byte-identical for every `exec`: acceptance and global
    /// order are decided by a sequential dedup/append pass; the parallel
    /// stage only counting-sorts each shard's accepted indices into per-page
    /// groups (two flat arrays per shard, no per-page `Vec`s), and each
    /// posting list's content is fully determined by the global order. This
    /// is the synthesis ingestion path at scale.
    pub fn ingest_batch(&mut self, items: &[(UserId, PageId, SimTime)], exec: Exec) -> usize {
        self.ingest_columns(&LikeColumns::from_rows(items), exec)
    }

    /// Columnar bulk-record: the core behind
    /// [`ingest_batch`][Self::ingest_batch], taking the batch as
    /// [`LikeColumns`] so synthesis output lands here without assembling
    /// row tuples. Semantics are identical to a positional
    /// [`record`][Self::record] loop over the zipped columns, and the
    /// resulting ledger bytes do not depend on `exec`.
    pub fn ingest_columns(&mut self, batch: &LikeColumns, exec: Exec) -> usize {
        // A positional `record` loop pays several random-memory touches per
        // item (membership probe, overlay memmove, posting push into a cold
        // list) — the dominant cost of synthesis at scale. Instead, group
        // the batch by user once, make the same accept/reject decisions
        // per user via a sort-merge against the existing page set, then
        // assign global indices in one linear pass over the original order.
        //
        // Decision equivalence: `record` accepts an item iff its (user,
        // page) pair is not in history and no earlier batch item claimed
        // it. Grouping by user partitions the problem; within a user,
        // sorting (page, batch position) makes duplicates adjacent with the
        // earliest position first, which is exactly the occurrence the
        // positional loop would have accepted. Global record order is
        // decided by the final positional pass, so it is byte-identical.
        let (b_users, b_pages, b_times) = (&batch.users, &batch.pages, &batch.times);
        assert_eq!(b_users.len(), b_pages.len(), "ragged like columns");
        assert_eq!(b_users.len(), b_times.len(), "ragged like columns");
        let n = b_users.len();
        if n == 0 {
            return 0;
        }
        let n_users = self.by_user.len();
        if n < n_users / 8 {
            // Batches far smaller than the account table (the event loop's
            // coalesced runs) pay for the dense kernel's O(accounts)
            // counting arrays and full shard walk; route them through the
            // sparse twin, whose work scales with the batch.
            return self.ingest_columns_sparse(batch);
        }
        let mut counts = vec![0u32; n_users + 1];
        for &user in b_users {
            counts[user.idx() + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        // Stable scatter: positions of each user's items, in batch order.
        // Only the 4-byte user column streams through this pass.
        let mut by_user_pos = vec![0u32; n];
        let mut cursor = counts.clone();
        for (i, &user) in b_users.iter().enumerate() {
            let c = &mut cursor[user.idx()];
            by_user_pos[*c as usize] = i as u32;
            *c += 1;
        }
        drop(cursor);
        // Per-user dedup against history + within the batch.
        let mut accept = vec![false; n];
        let mut cand: Vec<(u32, u32)> = Vec::new();
        let mut merged: Vec<u32> = Vec::new();
        for u in 0..n_users {
            let (lo, hi) = (counts[u] as usize, counts[u + 1] as usize);
            if lo == hi {
                continue;
            }
            cand.clear();
            cand.extend(
                by_user_pos[lo..hi]
                    .iter()
                    .map(|&pos| (b_pages[pos as usize].0, pos)),
            );
            cand.sort_unstable();
            self.user_pages[u].absorb_sorted(&cand, &mut accept, &mut merged);
        }
        // Positional pass: append accepted records to the columns in batch
        // order. When nothing was rejected — the overwhelming synthesis
        // case, since draws dedup pages per user up front — each column is
        // one memcpy and every global index is just `start + position`.
        let start = self.users.len() as u32;
        let all_accepted = accept.iter().all(|&a| a);
        let mut global_idx: Vec<u32> = Vec::new();
        let accepted = if all_accepted {
            self.users.extend_from_slice(b_users);
            self.pages.extend_from_slice(b_pages);
            self.times.extend_from_slice(b_times);
            n
        } else {
            global_idx = vec![u32::MAX; n];
            let mut next = start;
            self.users.reserve(n);
            self.pages.reserve(n);
            self.times.reserve(n);
            for i in 0..n {
                if !accept[i] {
                    continue;
                }
                self.users.push(b_users[i]);
                self.pages.push(b_pages[i]);
                self.times.push(b_times[i]);
                global_idx[i] = next;
                next += 1;
            }
            (next - start) as usize
        };
        // Per-user posting extends: batch order within a user means the
        // accepted global indices come out strictly increasing.
        let mut idxs: Vec<u32> = Vec::new();
        for u in 0..n_users {
            let (lo, hi) = (counts[u] as usize, counts[u + 1] as usize);
            if lo == hi {
                continue;
            }
            idxs.clear();
            if all_accepted {
                idxs.extend(by_user_pos[lo..hi].iter().map(|&pos| start + pos));
            } else {
                idxs.extend(by_user_pos[lo..hi].iter().filter_map(|&pos| {
                    let g = global_idx[pos as usize];
                    (g != u32::MAX).then_some(g)
                }));
            }
            if !idxs.is_empty() {
                self.by_user[u].extend_from_increasing(&idxs);
            }
        }
        drop(by_user_pos);
        drop(global_idx);
        drop(accept);
        // Group the appended records per shard with one flat counting sort
        // over the fresh page-column tail (stable, so each shard's pairs
        // keep global order) — no per-shard Vec growth.
        let n_shards = self.shards.len();
        let mut shard_counts = vec![0u32; n_shards + 1];
        let new_pages = &self.pages[start as usize..];
        for &page in new_pages {
            shard_counts[page.idx() / SHARD_PAGES + 1] += 1;
        }
        for i in 1..shard_counts.len() {
            shard_counts[i] += shard_counts[i - 1];
        }
        let mut flat_pairs: Vec<(u32, u32)> = vec![(0, 0); accepted];
        let mut cursor = shard_counts.clone();
        for (k, &page) in new_pages.iter().enumerate() {
            let c = &mut cursor[page.idx() / SHARD_PAGES];
            flat_pairs[*c as usize] = ((page.idx() % SHARD_PAGES) as u32, start + k as u32);
            *c += 1;
        }
        drop(cursor);
        let per_shard: Vec<&[(u32, u32)]> = (0..n_shards)
            .map(|s| &flat_pairs[shard_counts[s] as usize..shard_counts[s + 1] as usize])
            .collect();
        // Parallel per-shard grouping: counting-sort the (local page, index)
        // pairs into a flat value array plus per-page offsets. Stable, so
        // each page's slice keeps global order.
        let widths: Vec<usize> = self.shards.iter().map(|s| s.by_page.len()).collect();
        let grouped = parallel_map(exec, &per_shard, |s, pairs| {
            let width = widths[s];
            let mut counts = vec![0u32; width + 1];
            for &(local, _) in pairs.iter() {
                counts[local as usize + 1] += 1;
            }
            for i in 1..counts.len() {
                counts[i] += counts[i - 1];
            }
            let mut flat = vec![0u32; pairs.len()];
            let mut cursor = counts.clone();
            for &(local, idx) in pairs.iter() {
                flat[cursor[local as usize] as usize] = idx;
                cursor[local as usize] += 1;
            }
            (counts, flat)
        });
        // Sequential shard-order merge into the packed posting lists.
        for (shard, (offsets, flat)) in self.shards.iter_mut().zip(grouped) {
            for (local, list) in shard.by_page.iter_mut().enumerate() {
                let (lo, hi) = (offsets[local] as usize, offsets[local + 1] as usize);
                if lo < hi {
                    list.extend_from_increasing(&flat[lo..hi]);
                }
            }
        }
        accepted
    }

    /// Sparse twin of the dense columnar kernel, for batches far smaller
    /// than the user table: identical accept decisions, global order, and
    /// posting-list bytes, but every pass touches only the users, pages,
    /// and shards the batch mentions — no O(accounts) arrays, no walk over
    /// every posting list. Fully sequential (the dense kernel's parallel
    /// shard stage would be pure overhead at this size).
    fn ingest_columns_sparse(&mut self, batch: &LikeColumns) -> usize {
        let (b_users, b_pages, b_times) = (&batch.users, &batch.pages, &batch.times);
        let n = b_users.len();
        // (user, page, pos): user groups come out adjacent, and within a
        // user the (page, pos) order is exactly the candidate ordering
        // `absorb_sorted` expects.
        let mut triples: Vec<(u32, u32, u32)> = (0..n)
            .map(|i| (b_users[i].0, b_pages[i].0, i as u32))
            .collect();
        triples.sort_unstable();
        let mut accept = vec![false; n];
        let mut cand: Vec<(u32, u32)> = Vec::new();
        let mut merged: Vec<u32> = Vec::new();
        let mut k = 0usize;
        while k < triples.len() {
            let user = triples[k].0;
            let lo = k;
            while k < triples.len() && triples[k].0 == user {
                k += 1;
            }
            cand.clear();
            cand.extend(triples[lo..k].iter().map(|&(_, page, pos)| (page, pos)));
            self.user_pages[user as usize].absorb_sorted(&cand, &mut accept, &mut merged);
        }
        // Positional pass: append accepted records in batch order.
        let start = self.users.len() as u32;
        let mut global_idx = vec![u32::MAX; n];
        let mut next = start;
        for i in 0..n {
            if accept[i] {
                self.users.push(b_users[i]);
                self.pages.push(b_pages[i]);
                self.times.push(b_times[i]);
                global_idx[i] = next;
                next += 1;
            }
        }
        let accepted = (next - start) as usize;
        // Per-user posting extends over the same user runs. The gathered
        // indices arrive page-sorted, so re-sort into the strictly
        // increasing (= batch position) order the posting list needs.
        let mut idxs: Vec<u32> = Vec::new();
        let mut k = 0usize;
        while k < triples.len() {
            let user = triples[k].0;
            let lo = k;
            while k < triples.len() && triples[k].0 == user {
                k += 1;
            }
            idxs.clear();
            idxs.extend(triples[lo..k].iter().filter_map(|&(_, _, pos)| {
                let g = global_idx[pos as usize];
                (g != u32::MAX).then_some(g)
            }));
            idxs.sort_unstable();
            if !idxs.is_empty() {
                self.by_user[user as usize].extend_from_increasing(&idxs);
            }
        }
        // Per-page posting extends: sorting (page, index) pairs makes page
        // runs adjacent with indices ascending (the sort's tie-break *is*
        // global order), so each run extends its list directly — only the
        // pages actually present in the batch are touched.
        let mut by_page: Vec<(u32, u32)> = (start..next)
            .map(|g| (self.pages[g as usize].0, g))
            .collect();
        by_page.sort_unstable();
        let mut k = 0usize;
        while k < by_page.len() {
            let page = by_page[k].0 as usize;
            let lo = k;
            while k < by_page.len() && by_page[k].0 as usize == page {
                k += 1;
            }
            idxs.clear();
            idxs.extend(by_page[lo..k].iter().map(|&(_, g)| g));
            self.shards[page / SHARD_PAGES].by_page[page % SHARD_PAGES]
                .extend_from_increasing(&idxs);
        }
        accepted
    }

    /// Total number of likes ever recorded.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when no like was recorded.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// True when `user` likes `page` (membership query).
    pub fn likes_page(&self, user: UserId, page: PageId) -> bool {
        self.user_pages
            .get(user.idx())
            .map(|up| {
                up.base.binary_search(&page.0).is_ok() || up.overlay.binary_search(&page.0).is_ok()
            })
            .unwrap_or(false)
    }

    /// The pages `user` likes, in ascending page-id order (allocation-free).
    pub fn user_pages(&self, user: UserId) -> impl Iterator<Item = PageId> + '_ {
        self.user_pages[user.idx()].iter().map(PageId)
    }

    /// Number of page-range index shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The page ids covered by shard `s` (a `s * SHARD_PAGES ..` range
    /// clamped to the page count). Aggregations that batch per shard walk
    /// `0..shard_count()` and process each range independently.
    pub fn shard_pages(&self, s: usize) -> std::ops::Range<u32> {
        let lo = (s * SHARD_PAGES).min(self.n_pages) as u32;
        let hi = ((s + 1) * SHARD_PAGES).min(self.n_pages) as u32;
        lo..hi
    }

    /// Assemble the record at a global index.
    fn record_at(&self, idx: u32) -> LikeRecord {
        let i = idx as usize;
        LikeRecord {
            user: self.users[i],
            page: self.pages[i],
            at: self.times[i],
        }
    }

    /// Like records of a page, in arrival order.
    pub fn of_page(&self, page: PageId) -> impl Iterator<Item = LikeRecord> + '_ {
        self.shards[page.idx() / SHARD_PAGES].by_page[page.idx() % SHARD_PAGES]
            .iter()
            .map(move |i| self.record_at(i))
    }

    /// Like records of a page, sorted by time (stable on arrival order).
    pub fn of_page_sorted(&self, page: PageId) -> Vec<LikeRecord> {
        let mut v: Vec<LikeRecord> = self.of_page(page).collect();
        v.sort_by_key(|r| r.at);
        v
    }

    /// Like records of a user, sorted by time (stable on arrival order).
    pub fn of_user_sorted(&self, user: UserId) -> Vec<LikeRecord> {
        let mut v: Vec<LikeRecord> = self.of_user(user).collect();
        v.sort_by_key(|r| r.at);
        v
    }

    /// Like records of a user, in recording order.
    pub fn of_user(&self, user: UserId) -> impl Iterator<Item = LikeRecord> + '_ {
        self.by_user[user.idx()]
            .iter()
            .map(move |i| self.record_at(i))
    }

    /// Like timestamps of a user, in recording order (reads only the time
    /// column — the anti-fraud sweep's burstiness feature walks this for
    /// every account without assembling records).
    pub fn user_times(&self, user: UserId) -> impl Iterator<Item = SimTime> + '_ {
        self.by_user[user.idx()]
            .iter()
            .map(move |i| self.times[i as usize])
    }

    /// Like timestamps of a page, in arrival order (time column only).
    pub fn page_times(&self, page: PageId) -> impl Iterator<Item = SimTime> + '_ {
        self.shards[page.idx() / SHARD_PAGES].by_page[page.idx() % SHARD_PAGES]
            .iter()
            .map(move |i| self.times[i as usize])
    }

    /// The users liking a page, in arrival order (user column only — the
    /// poll snapshot and the audience report need no other field).
    pub fn page_users(&self, page: PageId) -> impl Iterator<Item = UserId> + '_ {
        self.shards[page.idx() / SHARD_PAGES].by_page[page.idx() % SHARD_PAGES]
            .iter()
            .map(move |i| self.users[i as usize])
    }

    /// `(user, timestamp)` pairs of a page's likes, in arrival order (two
    /// column reads, no record assembly).
    pub fn page_user_times(&self, page: PageId) -> impl Iterator<Item = (UserId, SimTime)> + '_ {
        self.shards[page.idx() / SHARD_PAGES].by_page[page.idx() % SHARD_PAGES]
            .iter()
            .map(move |i| (self.users[i as usize], self.times[i as usize]))
    }

    /// The user column from global index `start` on — the contiguous tail
    /// appended since an incremental consumer's last look.
    pub fn users_from(&self, start: u32) -> &[UserId] {
        &self.users[start as usize..]
    }

    /// The time column from global index `start` on.
    pub fn times_from(&self, start: u32) -> &[SimTime] {
        &self.times[start as usize..]
    }

    /// How many pages `user` likes.
    pub fn user_like_count(&self, user: UserId) -> usize {
        self.by_user[user.idx()].len()
    }

    /// How many users like `page`.
    pub fn page_like_count(&self, page: PageId) -> usize {
        self.shards[page.idx() / SHARD_PAGES].by_page[page.idx() % SHARD_PAGES].len()
    }

    /// All records, in global chronological (= insertion) order.
    pub fn records(&self) -> impl Iterator<Item = LikeRecord> + '_ {
        (0..self.users.len() as u32).map(move |i| self.record_at(i))
    }

    /// The records from global index `start` on, in insertion order — the
    /// tail appended since a caller's last look. Incremental consumers (the
    /// anti-fraud sweep) fold this instead of re-walking per-user streams.
    pub fn records_from(&self, start: u32) -> impl Iterator<Item = LikeRecord> + '_ {
        (start..self.users.len() as u32).map(move |i| self.record_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }
    fn p(i: u32) -> PageId {
        PageId(i)
    }
    fn t(d: u64) -> SimTime {
        SimTime::at_day(d)
    }

    #[test]
    fn record_and_query_both_sides() {
        let mut l = LikeLedger::new(3, 2);
        assert!(l.record(u(0), p(1), t(1)));
        assert!(l.record(u(2), p(1), t(2)));
        assert!(l.record(u(0), p(0), t(3)));
        assert_eq!(l.len(), 3);
        let page1: Vec<UserId> = l.of_page(p(1)).map(|r| r.user).collect();
        assert_eq!(page1, vec![u(0), u(2)]);
        let user0: Vec<PageId> = l.of_user(u(0)).map(|r| r.page).collect();
        assert_eq!(user0, vec![p(1), p(0)]);
        assert_eq!(l.user_like_count(u(0)), 2);
        assert_eq!(l.page_like_count(p(1)), 2);
        assert!(l.likes_page(u(2), p(1)));
        assert!(!l.likes_page(u(1), p(1)));
        assert_eq!(l.user_pages(u(0)).collect::<Vec<_>>(), vec![p(0), p(1)]);
    }

    #[test]
    fn duplicates_ignored() {
        let mut l = LikeLedger::new(1, 1);
        assert!(l.record(u(0), p(0), t(0)));
        assert!(!l.record(u(0), p(0), t(5)));
        assert_eq!(l.len(), 1);
        assert_eq!(l.of_page(p(0)).count(), 1);
    }

    #[test]
    fn chronological_page_stream() {
        let mut l = LikeLedger::new(10, 1);
        for i in 0..10 {
            l.record(u(i), p(0), t(u64::from(i)));
        }
        let times: Vec<u64> = l.of_page(p(0)).map(|r| r.at.day()).collect();
        assert_eq!(times, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sorted_accessors_handle_backfill() {
        let mut l = LikeLedger::new(3, 2);
        l.record(u(0), p(0), t(9));
        l.record(u(0), p(1), t(2)); // backfilled history
        l.record(u(1), p(0), t(1)); // backfilled on same page
        let page0: Vec<u64> = l.of_page_sorted(p(0)).iter().map(|r| r.at.day()).collect();
        assert_eq!(page0, vec![1, 9]);
        let user0: Vec<u64> = l.of_user_sorted(u(0)).iter().map(|r| r.at.day()).collect();
        assert_eq!(user0, vec![2, 9]);
        let raw: Vec<u64> = l.user_times(u(0)).map(|t| t.day()).collect();
        assert_eq!(raw, vec![9, 2], "user_times is recording order");
    }

    #[test]
    fn growth_preserves_history() {
        let mut l = LikeLedger::new(1, 1);
        l.record(u(0), p(0), t(0));
        l.ensure_users(5);
        l.ensure_pages(5);
        l.record(u(4), p(4), t(1));
        assert_eq!(l.len(), 2);
        assert_eq!(l.user_like_count(u(0)), 1);
        assert_eq!(l.user_like_count(u(4)), 1);
    }

    #[test]
    fn empty_ledger() {
        let l = LikeLedger::new(2, 2);
        assert!(l.is_empty());
        assert_eq!(l.of_page(p(0)).count(), 0);
        assert_eq!(l.user_like_count(u(1)), 0);
    }

    #[test]
    fn growth_spans_multiple_shards() {
        let n = SHARD_PAGES * 2 + 10;
        let mut l = LikeLedger::new(3, 1);
        l.ensure_pages(n);
        assert_eq!(l.shard_count(), 3);
        assert_eq!(l.shard_pages(0), 0..SHARD_PAGES as u32);
        assert_eq!(l.shard_pages(2), (2 * SHARD_PAGES) as u32..n as u32);
        let far = p(n as u32 - 1);
        assert!(l.record(u(2), far, t(4)));
        assert_eq!(l.page_like_count(far), 1);
        assert_eq!(l.of_page(far).next().unwrap().user, u(2));
    }

    #[test]
    fn heavy_user_membership_survives_overlay_merges() {
        // Enough inserts to trigger several overlay merges, in a scrambled
        // page order like the time-sorted synthesis batch produces.
        let n = 500u32;
        let mut l = LikeLedger::new(1, n as usize);
        for i in 0..n {
            let page = (i * 193) % n; // permutation of 0..n
            assert!(l.record(u(0), p(page), t(u64::from(i))));
        }
        assert_eq!(l.user_like_count(u(0)), n as usize);
        for page in 0..n {
            assert!(l.likes_page(u(0), p(page)));
            assert!(!l.record(u(0), p(page), t(999)), "dup accepted");
        }
        let pages: Vec<u32> = l.user_pages(u(0)).map(|p| p.0).collect();
        assert_eq!(pages, (0..n).collect::<Vec<_>>(), "sorted and complete");
    }

    #[test]
    fn sparse_small_batch_matches_sequential_record() {
        // Enough accounts that a small batch routes through the sparse
        // kernel (n < n_users / 8), with in-batch and historical dups.
        let n_users = 5_000;
        let n_pages = SHARD_PAGES + 50;
        let mut batch: Vec<(UserId, PageId, SimTime)> = Vec::new();
        for i in 0..200u32 {
            let page = (i * 91) % n_pages as u32;
            batch.push((u(i % 40), p(page), t(u64::from(i % 23))));
        }
        batch.push(batch[5]); // in-batch duplicate
        let mut by_record = LikeLedger::new(n_users, n_pages);
        by_record.record(u(3), p(17), t(1)); // pre-existing history
        let mut expected_new = 0usize;
        for &(user, page, at) in &batch {
            if by_record.record(user, page, at) {
                expected_new += 1;
            }
        }
        let mut by_batch = LikeLedger::new(n_users, n_pages);
        by_batch.record(u(3), p(17), t(1));
        let accepted = by_batch.ingest_batch(&batch, Exec::Sequential);
        assert_eq!(accepted, expected_new);
        let a: Vec<LikeRecord> = by_batch.records().collect();
        let b: Vec<LikeRecord> = by_record.records().collect();
        assert_eq!(a, b, "global order differs");
        for page in 0..n_pages as u32 {
            let x: Vec<LikeRecord> = by_batch.of_page(p(page)).collect();
            let y: Vec<LikeRecord> = by_record.of_page(p(page)).collect();
            assert_eq!(x, y, "page {page} postings differ");
        }
        for user in 0..40 {
            let x: Vec<LikeRecord> = by_batch.of_user(u(user)).collect();
            let y: Vec<LikeRecord> = by_record.of_user(u(user)).collect();
            assert_eq!(x, y, "user {user} postings differ");
        }
    }

    #[test]
    fn ingest_batch_matches_sequential_record() {
        // Batch ingestion over several shards, with duplicates both inside
        // the batch and against pre-existing history.
        let n_pages = SHARD_PAGES + 50;
        let mut batch: Vec<(UserId, PageId, SimTime)> = Vec::new();
        for i in 0..400u32 {
            let page = (i * 37) % n_pages as u32;
            batch.push((u(i % 90), p(page), t(u64::from(i) % 40)));
        }
        batch.push(batch[3]); // in-batch duplicate
        batch.push((u(0), p(0), t(99)));

        let mut by_record = LikeLedger::new(90, n_pages);
        by_record.record(u(0), p(0), t(7)); // pre-existing like, dup below
        let mut expected_new = 0usize;
        for &(user, page, at) in &batch {
            if by_record.record(user, page, at) {
                expected_new += 1;
            }
        }

        for workers in [1usize, 3] {
            let mut by_batch = LikeLedger::new(90, n_pages);
            by_batch.record(u(0), p(0), t(7));
            let accepted = by_batch.ingest_batch(&batch, Exec::workers(workers));
            assert_eq!(accepted, expected_new, "workers={workers}");
            assert_eq!(by_batch.len(), by_record.len());
            let a: Vec<LikeRecord> = by_batch.records().collect();
            let b: Vec<LikeRecord> = by_record.records().collect();
            assert_eq!(a, b, "global order differs (workers={workers})");
            for page in 0..n_pages as u32 {
                let x: Vec<LikeRecord> = by_batch.of_page(p(page)).collect();
                let y: Vec<LikeRecord> = by_record.of_page(p(page)).collect();
                assert_eq!(x, y, "page {page} postings differ");
            }
            for user in 0..90 {
                assert_eq!(
                    by_batch.user_like_count(u(user)),
                    by_record.user_like_count(u(user))
                );
            }
        }
    }
}
