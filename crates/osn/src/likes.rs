//! The like ledger: every like with its timestamp, indexed from both sides.
//!
//! The ledger is the platform's authoritative record. The temporal analysis
//! (Figure 2) and the burst detector both consume chronological per-page
//! streams; the page-like analysis (Figure 4) consumes per-user counts.
//!
//! ## Layout
//!
//! At million-account scale the ledger holds tens of millions of records, so
//! storage is struct-of-arrays (`users`/`pages`/`times` columns in global
//! insertion order) and the per-page index is **sharded by page-id range**:
//! each shard owns [`SHARD_PAGES`] consecutive pages and its own local
//! `by_page` posting lists. Bulk ingestion ([`LikeLedger::ingest_batch`])
//! groups accepted records per shard through [`likelab_sim::parallel`], and
//! report aggregation can walk shards independently — nothing materializes a
//! global intermediate `Vec` per page.
//!
//! Every accessor hands out [`LikeRecord`]s **by value** (assembled from the
//! columns on demand), so iteration reads the same as it did when records
//! were stored as an array of structs.

use likelab_graph::{LikeGraph, PageId, UserId};
use likelab_sim::parallel::{parallel_map, Exec};
use likelab_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One like event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LikeRecord {
    /// Who liked.
    pub user: UserId,
    /// What they liked.
    pub page: PageId,
    /// When.
    pub at: SimTime,
}

/// Pages per index shard. Small enough that a study's background-page count
/// spreads over many shards, large enough that a shard's posting lists
/// amortize per-shard bookkeeping.
pub const SHARD_PAGES: usize = 4096;

/// One page-range shard of the per-page index: posting lists (global record
/// indices, in insertion order) for the pages in this shard's range.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct Shard {
    by_page: Vec<Vec<u32>>,
}

/// The append-only like ledger with both-side indexes. See the module docs
/// for the sharded struct-of-arrays layout.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LikeLedger {
    users: Vec<UserId>,
    pages: Vec<PageId>,
    times: Vec<SimTime>,
    graph: LikeGraph,
    by_user: Vec<Vec<u32>>,
    shards: Vec<Shard>,
    n_pages: usize,
}

impl LikeLedger {
    /// An empty ledger sized for `users` and `pages`.
    pub fn new(users: usize, pages: usize) -> Self {
        let mut ledger = LikeLedger {
            graph: LikeGraph::new(users, pages),
            by_user: vec![Vec::new(); users],
            ..LikeLedger::default()
        };
        ledger.grow_shards(pages);
        ledger
    }

    /// Grow the user side.
    pub fn ensure_users(&mut self, n: usize) {
        self.graph.ensure_users(n);
        if n > self.by_user.len() {
            self.by_user.resize(n, Vec::new());
        }
    }

    /// Grow the page side.
    pub fn ensure_pages(&mut self, n: usize) {
        self.graph.ensure_pages(n);
        self.grow_shards(n);
    }

    /// Size the shard list (and the tail shard's posting lists) for `n`
    /// pages.
    fn grow_shards(&mut self, n: usize) {
        if n <= self.n_pages {
            return;
        }
        self.n_pages = n;
        let shard_count = n.div_ceil(SHARD_PAGES);
        self.shards.resize_with(shard_count, Shard::default);
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let covered = (n - s * SHARD_PAGES).min(SHARD_PAGES);
            if covered > shard.by_page.len() {
                shard.by_page.resize(covered, Vec::new());
            }
        }
    }

    /// Record a like at time `at`. Duplicate (user, page) likes are ignored.
    /// Returns true when the like was new.
    ///
    /// Arrival order need not be chronological — farm accounts created
    /// mid-study backfill their camouflage histories with past timestamps.
    /// Use the `*_sorted` accessors when time order matters.
    pub fn record(&mut self, user: UserId, page: PageId, at: SimTime) -> bool {
        if !self.graph.add_like(user, page) {
            return false;
        }
        let idx = self.users.len() as u32;
        self.users.push(user);
        self.pages.push(page);
        self.times.push(at);
        self.by_user[user.idx()].push(idx);
        self.shards[page.idx() / SHARD_PAGES].by_page[page.idx() % SHARD_PAGES].push(idx);
        true
    }

    /// Bulk-record a batch of likes, indexing pages per shard in parallel.
    /// Returns how many were new (duplicates — within the batch or against
    /// history — are ignored, first occurrence wins, exactly as if each item
    /// had gone through [`record`][Self::record] in order).
    ///
    /// The result is byte-identical for every `exec`: acceptance and global
    /// order are decided by a sequential dedup/append pass; the parallel
    /// stage only groups each shard's accepted records into posting lists,
    /// and each posting list's content is fully determined by the global
    /// order. This is the synthesis ingestion path at scale — per-shard
    /// batches through [`likelab_sim::parallel`] instead of a global
    /// per-page intermediate.
    pub fn ingest_batch(&mut self, items: &[(UserId, PageId, SimTime)], exec: Exec) -> usize {
        // Sequential pass: dedup, append to the columns and the user index,
        // and partition accepted records by destination shard.
        let mut per_shard: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.shards.len()];
        let mut accepted = 0usize;
        for &(user, page, at) in items {
            if !self.graph.add_like(user, page) {
                continue;
            }
            let idx = self.users.len() as u32;
            self.users.push(user);
            self.pages.push(page);
            self.times.push(at);
            self.by_user[user.idx()].push(idx);
            per_shard[page.idx() / SHARD_PAGES].push(((page.idx() % SHARD_PAGES) as u32, idx));
            accepted += 1;
        }
        // Parallel per-shard grouping into dense posting-list deltas.
        let deltas = parallel_map(exec, &per_shard, |s, pairs| {
            let mut delta: Vec<Vec<u32>> = vec![Vec::new(); self.shards[s].by_page.len()];
            for &(local, idx) in pairs {
                delta[local as usize].push(idx);
            }
            delta
        });
        // Sequential shard-order merge.
        for (shard, delta) in self.shards.iter_mut().zip(deltas) {
            for (list, added) in shard.by_page.iter_mut().zip(delta) {
                if !added.is_empty() {
                    list.extend(added);
                }
            }
        }
        accepted
    }

    /// Total number of likes ever recorded.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when no like was recorded.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The structural like graph (membership queries, counts).
    pub fn graph(&self) -> &LikeGraph {
        &self.graph
    }

    /// Number of page-range index shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The page ids covered by shard `s` (a `s * SHARD_PAGES ..` range
    /// clamped to the page count). Aggregations that batch per shard walk
    /// `0..shard_count()` and process each range independently.
    pub fn shard_pages(&self, s: usize) -> std::ops::Range<u32> {
        let lo = (s * SHARD_PAGES).min(self.n_pages) as u32;
        let hi = ((s + 1) * SHARD_PAGES).min(self.n_pages) as u32;
        lo..hi
    }

    /// Assemble the record at a global index.
    fn record_at(&self, idx: u32) -> LikeRecord {
        let i = idx as usize;
        LikeRecord {
            user: self.users[i],
            page: self.pages[i],
            at: self.times[i],
        }
    }

    /// Like records of a page, in arrival order.
    pub fn of_page(&self, page: PageId) -> impl Iterator<Item = LikeRecord> + '_ {
        self.shards[page.idx() / SHARD_PAGES].by_page[page.idx() % SHARD_PAGES]
            .iter()
            .map(move |&i| self.record_at(i))
    }

    /// Like records of a page, sorted by time (stable on arrival order).
    pub fn of_page_sorted(&self, page: PageId) -> Vec<LikeRecord> {
        let mut v: Vec<LikeRecord> = self.of_page(page).collect();
        v.sort_by_key(|r| r.at);
        v
    }

    /// Like records of a user, sorted by time (stable on arrival order).
    pub fn of_user_sorted(&self, user: UserId) -> Vec<LikeRecord> {
        let mut v: Vec<LikeRecord> = self.of_user(user).collect();
        v.sort_by_key(|r| r.at);
        v
    }

    /// Like records of a user, in recording order.
    pub fn of_user(&self, user: UserId) -> impl Iterator<Item = LikeRecord> + '_ {
        self.by_user[user.idx()]
            .iter()
            .map(move |&i| self.record_at(i))
    }

    /// How many pages `user` likes.
    pub fn user_like_count(&self, user: UserId) -> usize {
        self.by_user[user.idx()].len()
    }

    /// How many users like `page`.
    pub fn page_like_count(&self, page: PageId) -> usize {
        self.shards[page.idx() / SHARD_PAGES].by_page[page.idx() % SHARD_PAGES].len()
    }

    /// All records, in global chronological (= insertion) order.
    pub fn records(&self) -> impl Iterator<Item = LikeRecord> + '_ {
        (0..self.users.len() as u32).map(move |i| self.record_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }
    fn p(i: u32) -> PageId {
        PageId(i)
    }
    fn t(d: u64) -> SimTime {
        SimTime::at_day(d)
    }

    #[test]
    fn record_and_query_both_sides() {
        let mut l = LikeLedger::new(3, 2);
        assert!(l.record(u(0), p(1), t(1)));
        assert!(l.record(u(2), p(1), t(2)));
        assert!(l.record(u(0), p(0), t(3)));
        assert_eq!(l.len(), 3);
        let page1: Vec<UserId> = l.of_page(p(1)).map(|r| r.user).collect();
        assert_eq!(page1, vec![u(0), u(2)]);
        let user0: Vec<PageId> = l.of_user(u(0)).map(|r| r.page).collect();
        assert_eq!(user0, vec![p(1), p(0)]);
        assert_eq!(l.user_like_count(u(0)), 2);
        assert_eq!(l.page_like_count(p(1)), 2);
        assert!(l.graph().likes_page(u(2), p(1)));
    }

    #[test]
    fn duplicates_ignored() {
        let mut l = LikeLedger::new(1, 1);
        assert!(l.record(u(0), p(0), t(0)));
        assert!(!l.record(u(0), p(0), t(5)));
        assert_eq!(l.len(), 1);
        assert_eq!(l.of_page(p(0)).count(), 1);
    }

    #[test]
    fn chronological_page_stream() {
        let mut l = LikeLedger::new(10, 1);
        for i in 0..10 {
            l.record(u(i), p(0), t(u64::from(i)));
        }
        let times: Vec<u64> = l.of_page(p(0)).map(|r| r.at.day()).collect();
        assert_eq!(times, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sorted_accessors_handle_backfill() {
        let mut l = LikeLedger::new(3, 2);
        l.record(u(0), p(0), t(9));
        l.record(u(0), p(1), t(2)); // backfilled history
        l.record(u(1), p(0), t(1)); // backfilled on same page
        let page0: Vec<u64> = l.of_page_sorted(p(0)).iter().map(|r| r.at.day()).collect();
        assert_eq!(page0, vec![1, 9]);
        let user0: Vec<u64> = l.of_user_sorted(u(0)).iter().map(|r| r.at.day()).collect();
        assert_eq!(user0, vec![2, 9]);
    }

    #[test]
    fn growth_preserves_history() {
        let mut l = LikeLedger::new(1, 1);
        l.record(u(0), p(0), t(0));
        l.ensure_users(5);
        l.ensure_pages(5);
        l.record(u(4), p(4), t(1));
        assert_eq!(l.len(), 2);
        assert_eq!(l.user_like_count(u(0)), 1);
        assert_eq!(l.user_like_count(u(4)), 1);
    }

    #[test]
    fn empty_ledger() {
        let l = LikeLedger::new(2, 2);
        assert!(l.is_empty());
        assert_eq!(l.of_page(p(0)).count(), 0);
        assert_eq!(l.user_like_count(u(1)), 0);
    }

    #[test]
    fn growth_spans_multiple_shards() {
        let n = SHARD_PAGES * 2 + 10;
        let mut l = LikeLedger::new(3, 1);
        l.ensure_pages(n);
        assert_eq!(l.shard_count(), 3);
        assert_eq!(l.shard_pages(0), 0..SHARD_PAGES as u32);
        assert_eq!(l.shard_pages(2), (2 * SHARD_PAGES) as u32..n as u32);
        let far = p(n as u32 - 1);
        assert!(l.record(u(2), far, t(4)));
        assert_eq!(l.page_like_count(far), 1);
        assert_eq!(l.of_page(far).next().unwrap().user, u(2));
    }

    #[test]
    fn ingest_batch_matches_sequential_record() {
        // Batch ingestion over several shards, with duplicates both inside
        // the batch and against pre-existing history.
        let n_pages = SHARD_PAGES + 50;
        let mut batch: Vec<(UserId, PageId, SimTime)> = Vec::new();
        for i in 0..400u32 {
            let page = (i * 37) % n_pages as u32;
            batch.push((u(i % 90), p(page), t(u64::from(i) % 40)));
        }
        batch.push(batch[3]); // in-batch duplicate
        batch.push((u(0), p(0), t(99)));

        let mut by_record = LikeLedger::new(90, n_pages);
        by_record.record(u(0), p(0), t(7)); // pre-existing like, dup below
        let mut expected_new = 0usize;
        for &(user, page, at) in &batch {
            if by_record.record(user, page, at) {
                expected_new += 1;
            }
        }

        for workers in [1usize, 3] {
            let mut by_batch = LikeLedger::new(90, n_pages);
            by_batch.record(u(0), p(0), t(7));
            let accepted = by_batch.ingest_batch(&batch, Exec::workers(workers));
            assert_eq!(accepted, expected_new, "workers={workers}");
            assert_eq!(by_batch.len(), by_record.len());
            let a: Vec<LikeRecord> = by_batch.records().collect();
            let b: Vec<LikeRecord> = by_record.records().collect();
            assert_eq!(a, b, "global order differs (workers={workers})");
            for page in 0..n_pages as u32 {
                let x: Vec<LikeRecord> = by_batch.of_page(p(page)).collect();
                let y: Vec<LikeRecord> = by_record.of_page(p(page)).collect();
                assert_eq!(x, y, "page {page} postings differ");
            }
            for user in 0..90 {
                assert_eq!(
                    by_batch.user_like_count(u(user)),
                    by_record.user_like_count(u(user))
                );
            }
        }
    }
}
