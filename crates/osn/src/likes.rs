//! The like ledger: every like with its timestamp, indexed from both sides.
//!
//! The ledger is the platform's authoritative record. The temporal analysis
//! (Figure 2) and the burst detector both consume chronological per-page
//! streams; the page-like analysis (Figure 4) consumes per-user counts.

use likelab_graph::{LikeGraph, PageId, UserId};
use likelab_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One like event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LikeRecord {
    /// Who liked.
    pub user: UserId,
    /// What they liked.
    pub page: PageId,
    /// When.
    pub at: SimTime,
}

/// The append-only like ledger with both-side indexes.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LikeLedger {
    records: Vec<LikeRecord>,
    graph: LikeGraph,
    by_page: Vec<Vec<u32>>,
    by_user: Vec<Vec<u32>>,
}

impl LikeLedger {
    /// An empty ledger sized for `users` and `pages`.
    pub fn new(users: usize, pages: usize) -> Self {
        LikeLedger {
            records: Vec::new(),
            graph: LikeGraph::new(users, pages),
            by_page: vec![Vec::new(); pages],
            by_user: vec![Vec::new(); users],
        }
    }

    /// Grow the user side.
    pub fn ensure_users(&mut self, n: usize) {
        self.graph.ensure_users(n);
        if n > self.by_user.len() {
            self.by_user.resize(n, Vec::new());
        }
    }

    /// Grow the page side.
    pub fn ensure_pages(&mut self, n: usize) {
        self.graph.ensure_pages(n);
        if n > self.by_page.len() {
            self.by_page.resize(n, Vec::new());
        }
    }

    /// Record a like at time `at`. Duplicate (user, page) likes are ignored.
    /// Returns true when the like was new.
    ///
    /// Arrival order need not be chronological — farm accounts created
    /// mid-study backfill their camouflage histories with past timestamps.
    /// Use the `*_sorted` accessors when time order matters.
    pub fn record(&mut self, user: UserId, page: PageId, at: SimTime) -> bool {
        if !self.graph.add_like(user, page) {
            return false;
        }
        let idx = self.records.len() as u32;
        self.records.push(LikeRecord { user, page, at });
        self.by_page[page.idx()].push(idx);
        self.by_user[user.idx()].push(idx);
        true
    }

    /// Total number of likes ever recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no like was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The structural like graph (membership queries, counts).
    pub fn graph(&self) -> &LikeGraph {
        &self.graph
    }

    /// Like records of a page, in arrival order.
    pub fn of_page(&self, page: PageId) -> impl Iterator<Item = &LikeRecord> {
        self.by_page[page.idx()]
            .iter()
            .map(move |i| &self.records[*i as usize])
    }

    /// Like records of a page, sorted by time (stable on arrival order).
    pub fn of_page_sorted(&self, page: PageId) -> Vec<LikeRecord> {
        let mut v: Vec<LikeRecord> = self.of_page(page).copied().collect();
        v.sort_by_key(|r| r.at);
        v
    }

    /// Like records of a user, sorted by time (stable on arrival order).
    pub fn of_user_sorted(&self, user: UserId) -> Vec<LikeRecord> {
        let mut v: Vec<LikeRecord> = self.of_user(user).copied().collect();
        v.sort_by_key(|r| r.at);
        v
    }

    /// Like records of a user, in recording order.
    pub fn of_user(&self, user: UserId) -> impl Iterator<Item = &LikeRecord> {
        self.by_user[user.idx()]
            .iter()
            .map(move |i| &self.records[*i as usize])
    }

    /// How many pages `user` likes.
    pub fn user_like_count(&self, user: UserId) -> usize {
        self.by_user[user.idx()].len()
    }

    /// How many users like `page`.
    pub fn page_like_count(&self, page: PageId) -> usize {
        self.by_page[page.idx()].len()
    }

    /// All records, in global chronological (= insertion) order.
    pub fn records(&self) -> &[LikeRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }
    fn p(i: u32) -> PageId {
        PageId(i)
    }
    fn t(d: u64) -> SimTime {
        SimTime::at_day(d)
    }

    #[test]
    fn record_and_query_both_sides() {
        let mut l = LikeLedger::new(3, 2);
        assert!(l.record(u(0), p(1), t(1)));
        assert!(l.record(u(2), p(1), t(2)));
        assert!(l.record(u(0), p(0), t(3)));
        assert_eq!(l.len(), 3);
        let page1: Vec<UserId> = l.of_page(p(1)).map(|r| r.user).collect();
        assert_eq!(page1, vec![u(0), u(2)]);
        let user0: Vec<PageId> = l.of_user(u(0)).map(|r| r.page).collect();
        assert_eq!(user0, vec![p(1), p(0)]);
        assert_eq!(l.user_like_count(u(0)), 2);
        assert_eq!(l.page_like_count(p(1)), 2);
        assert!(l.graph().likes_page(u(2), p(1)));
    }

    #[test]
    fn duplicates_ignored() {
        let mut l = LikeLedger::new(1, 1);
        assert!(l.record(u(0), p(0), t(0)));
        assert!(!l.record(u(0), p(0), t(5)));
        assert_eq!(l.len(), 1);
        assert_eq!(l.of_page(p(0)).count(), 1);
    }

    #[test]
    fn chronological_page_stream() {
        let mut l = LikeLedger::new(10, 1);
        for i in 0..10 {
            l.record(u(i), p(0), t(u64::from(i)));
        }
        let times: Vec<u64> = l.of_page(p(0)).map(|r| r.at.day()).collect();
        assert_eq!(times, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sorted_accessors_handle_backfill() {
        let mut l = LikeLedger::new(3, 2);
        l.record(u(0), p(0), t(9));
        l.record(u(0), p(1), t(2)); // backfilled history
        l.record(u(1), p(0), t(1)); // backfilled on same page
        let page0: Vec<u64> = l.of_page_sorted(p(0)).iter().map(|r| r.at.day()).collect();
        assert_eq!(page0, vec![1, 9]);
        let user0: Vec<u64> = l.of_user_sorted(u(0)).iter().map(|r| r.at.day()).collect();
        assert_eq!(user0, vec![2, 9]);
    }

    #[test]
    fn growth_preserves_history() {
        let mut l = LikeLedger::new(1, 1);
        l.record(u(0), p(0), t(0));
        l.ensure_users(5);
        l.ensure_pages(5);
        l.record(u(4), p(4), t(1));
        assert_eq!(l.len(), 2);
        assert_eq!(l.user_like_count(u(0)), 1);
        assert_eq!(l.user_like_count(u(4)), 1);
    }

    #[test]
    fn empty_ledger() {
        let l = LikeLedger::new(2, 2);
        assert!(l.is_empty());
        assert_eq!(l.of_page(p(0)).count(), 0);
        assert_eq!(l.user_like_count(u(1)), 0);
    }
}
