//! World mutation events — the vocabulary of the event-sourced world log.
//!
//! Every mutation of [`OsnWorld`](crate::OsnWorld) (account creation,
//! friendship, like, termination, …) can be captured as a [`WorldEvent`].
//! The world carries an embedded recorder: when recording is on, each
//! *accepted* mutation appends one event to an in-memory buffer that the
//! orchestration layer drains into a durable log. Replaying the events in
//! order against a fresh world reproduces the original state exactly —
//! that is the replay-identity guarantee the CI gate checks.
//!
//! Two deliberate asymmetries keep the log compact without breaking
//! identity:
//!
//! - rejected mutations (duplicate edges, likes by terminated accounts,
//!   double terminations) are *not* logged — replay applies the same
//!   validation, so the outcomes match;
//! - bulk like ingestion logs the *input* batch verbatim
//!   ([`WorldEvent::LikeBatch`]); replay re-filters it against the replayed
//!   account state, which is identical at that point in the stream.

use crate::account::{ActorClass, PrivacySettings};
use crate::demographics::Profile;
use crate::page::PageCategory;
use likelab_graph::{PageId, UserId};
use likelab_sim::SimTime;

/// One accepted world mutation, in a form that can be serialized, stored,
/// and replayed. Events are self-contained: replay needs no RNG and no
/// model parameters, only the stream in its original order.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WorldEvent {
    /// An account came into existence. Ids are dense and assigned in
    /// creation order, so the event does not need to carry one.
    AccountCreated {
        /// Demographic profile.
        profile: Profile,
        /// Ground-truth actor class.
        class: ActorClass,
        /// Privacy settings at creation.
        privacy: PrivacySettings,
        /// Creation time.
        at: SimTime,
    },
    /// A page came into existence (dense ids, creation order).
    PageCreated {
        /// Display name.
        name: String,
        /// Free-form description.
        description: String,
        /// Owning account, if any.
        owner: Option<UserId>,
        /// Page category.
        category: PageCategory,
        /// Creation time.
        at: SimTime,
    },
    /// A single new friendship edge.
    Friendship {
        /// One endpoint.
        a: UserId,
        /// The other endpoint.
        b: UserId,
    },
    /// A batch of new edges from a bulk generator, in insertion order.
    FriendshipBatch {
        /// The edges, exactly as the generator added them.
        edges: Vec<(UserId, UserId)>,
    },
    /// The off-network friend count of an account was set.
    OffNetworkFriends {
        /// The account.
        user: UserId,
        /// New off-network friend count.
        n: u32,
    },
    /// A single accepted like.
    Like {
        /// Who liked.
        user: UserId,
        /// What they liked.
        page: PageId,
        /// When.
        at: SimTime,
    },
    /// A bulk like ingestion — the *input* batch, before filtering.
    /// Replay re-applies the same active-account filter and duplicate
    /// rejection, which produce identical results against the replayed
    /// state.
    LikeBatch {
        /// The batch as handed to `ingest_likes`.
        likes: Vec<(UserId, PageId, SimTime)>,
    },
    /// An active account was terminated.
    Terminated {
        /// The account.
        user: UserId,
        /// Termination time.
        at: SimTime,
    },
    /// A terminated account was reinstated.
    Reinstated {
        /// The account.
        user: UserId,
    },
}

/// The world's embedded event recorder: a buffer of accepted mutations,
/// filled only while recording is enabled (off by default, so untraced
/// runs pay nothing but a branch per mutation).
#[derive(Clone, Debug, Default)]
pub(crate) struct Recorder {
    enabled: bool,
    buf: Vec<WorldEvent>,
}

impl Recorder {
    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event if recording; `ev` is only built when needed.
    pub(crate) fn push_with(&mut self, ev: impl FnOnce() -> WorldEvent) {
        if self.enabled {
            self.buf.push(ev());
        }
    }

    pub(crate) fn drain(&mut self) -> Vec<WorldEvent> {
        std::mem::take(&mut self.buf)
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::AccountStatus;
    use crate::demographics::{Country, Gender};
    use crate::world::OsnWorld;
    use likelab_sim::parallel::Exec;

    fn profile() -> Profile {
        Profile {
            gender: Gender::Female,
            age: 31,
            country: Country::Usa,
            home_region: 2,
        }
    }

    fn privacy() -> PrivacySettings {
        PrivacySettings {
            friend_list_public: true,
            likes_public: false,
            searchable: true,
        }
    }

    /// Build a small world with every mutation kind while recording, then
    /// replay the drained events into a fresh world and compare state.
    #[test]
    fn replayed_events_reproduce_world_state() {
        let mut w = OsnWorld::new();
        w.set_recording(true);
        for _ in 0..6 {
            w.create_account(profile(), ActorClass::Organic, privacy(), SimTime::EPOCH);
        }
        let p = w.create_page(
            "honeypot",
            "plain page",
            Some(UserId(0)),
            PageCategory::Honeypot,
            SimTime::at_day(1),
        );
        w.add_friendship(UserId(0), UserId(1));
        w.add_friendship(UserId(1), UserId(0)); // duplicate: rejected, not logged
        w.generate_friendships(|g| {
            let mut added = Vec::new();
            if g.add_edge(UserId(2), UserId(3)) {
                added.push((UserId(2), UserId(3)));
            }
            if g.add_edge(UserId(3), UserId(4)) {
                added.push((UserId(3), UserId(4)));
            }
            added
        });
        w.set_off_network_friends(UserId(2), 77);
        w.record_like(UserId(0), p, SimTime::at_day(2));
        w.record_like(UserId(0), p, SimTime::at_day(3)); // dup: rejected
        w.terminate_account(UserId(4), SimTime::at_day(3));
        w.terminate_account(UserId(4), SimTime::at_day(4)); // idempotent: not logged
        w.ingest_likes(
            &[
                (UserId(1), p, SimTime::at_day(4)),
                (UserId(4), p, SimTime::at_day(4)), // terminated at replay time too
                (UserId(2), p, SimTime::at_day(5)),
            ],
            Exec::Sequential,
        );
        w.reinstate_account(UserId(4));
        let events = w.drain_events();
        assert!(
            events.len() >= 12,
            "expected one event per accepted mutation, got {}",
            events.len()
        );

        let mut replayed = OsnWorld::new();
        for ev in &events {
            replayed.apply_event(ev);
        }
        assert_eq!(replayed.account_count(), w.account_count());
        assert_eq!(replayed.page_count(), w.page_count());
        for id in w.user_ids() {
            assert_eq!(
                format!("{:?}", replayed.account(id)),
                format!("{:?}", w.account(id)),
                "account {id:?}"
            );
            assert_eq!(
                replayed.total_friend_count(id),
                w.total_friend_count(id),
                "friends of {id:?}"
            );
        }
        assert_eq!(replayed.all_likers(p), w.all_likers(p));
        assert_eq!(replayed.visible_likers(p), w.visible_likers(p));
        match replayed.account(UserId(4)).status {
            AccountStatus::Active => {}
            AccountStatus::Terminated(_) => panic!("reinstated account must be active"),
        }
    }

    #[test]
    fn rejected_mutations_are_not_logged() {
        let mut w = OsnWorld::new();
        w.set_recording(true);
        w.create_account(profile(), ActorClass::Organic, privacy(), SimTime::EPOCH);
        w.create_account(profile(), ActorClass::Organic, privacy(), SimTime::EPOCH);
        let n_create = w.drain_events().len();
        assert_eq!(n_create, 2);
        w.add_friendship(UserId(0), UserId(1));
        w.add_friendship(UserId(0), UserId(1));
        assert_eq!(w.drain_events().len(), 1, "duplicate edge not logged");
        let p = w.create_page("x", "", None, PageCategory::Background, SimTime::EPOCH);
        w.drain_events();
        w.terminate_account(UserId(0), SimTime::at_day(1));
        w.record_like(UserId(0), p, SimTime::at_day(2)); // rejected
        let evs = w.drain_events();
        assert_eq!(evs.len(), 1, "only the termination is logged: {evs:?}");
        assert!(matches!(evs[0], WorldEvent::Terminated { .. }));
    }

    #[test]
    fn recording_off_by_default_and_drains_empty() {
        let mut w = OsnWorld::new();
        assert!(!w.recording());
        w.create_account(profile(), ActorClass::Organic, privacy(), SimTime::EPOCH);
        assert!(w.drain_events().is_empty());
    }

    #[test]
    fn events_roundtrip_through_json() {
        let evs = vec![
            WorldEvent::AccountCreated {
                profile: profile(),
                class: ActorClass::Bot(3),
                privacy: privacy(),
                at: SimTime::at_day(3),
            },
            WorldEvent::FriendshipBatch {
                edges: vec![(UserId(0), UserId(1)), (UserId(2), UserId(0))],
            },
            WorldEvent::LikeBatch {
                likes: vec![(UserId(1), PageId(0), SimTime::at_day(9))],
            },
            WorldEvent::Reinstated { user: UserId(7) },
        ];
        for ev in &evs {
            let json = serde_json::to_string(&serde_json::to_value(ev)).unwrap();
            let back: WorldEvent =
                serde::Deserialize::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
            assert_eq!(&back, ev);
        }
    }
}
