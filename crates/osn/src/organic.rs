//! Ongoing organic activity during the study window.
//!
//! The population synthesizer fills pre-launch like histories; this module
//! keeps the world alive *during* the campaigns: users continue liking
//! background pages at individual Poisson rates. The activity matters for
//! the detection benchmarks (false-positive pressure) and keeps per-user
//! like streams from ending abruptly at launch.

use crate::population::{BackgroundSampler, Population, PopulationConfig};
use crate::world::OsnWorld;
use likelab_graph::{PageId, UserId};
use likelab_sim::dist::exponential;
use likelab_sim::{Rng, SimDuration, SimTime};

/// One planned organic background like.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrganicLike {
    /// Who likes.
    pub user: UserId,
    /// The liked background page.
    pub page: PageId,
    /// When.
    pub at: SimTime,
}

/// Plan background liking activity for `window` starting at `from`.
///
/// Each user's rate is proportional to their historical appetite (their
/// existing like count spread over the history window), so click-prone users
/// keep liking heavily and light users stay light. Returns a chronologically
/// sorted plan.
pub fn plan_background_activity(
    world: &OsnWorld,
    pop: &Population,
    config: &PopulationConfig,
    from: SimTime,
    window: SimDuration,
    rng: &mut Rng,
) -> Vec<OrganicLike> {
    let mut rng = rng.fork("organic.activity");
    if pop.background_pages.is_empty() || window.is_zero() {
        return Vec::new();
    }
    let sampler = BackgroundSampler::new(pop, config);
    let history_days = from.as_days_f64().max(1.0);
    let mut plan = Vec::new();
    for &user in pop.organic.iter().chain(pop.click_prone.iter()) {
        let appetite = world.likes().user_like_count(user) as f64 / history_days; // likes/day
        if appetite <= 0.0 {
            continue;
        }
        let country = world.account(user).profile.country;
        // Poisson process via exponential inter-arrivals.
        let mut t = from;
        loop {
            let gap_days = exponential(&mut rng, appetite);
            let gap = SimDuration::secs((gap_days * 86_400.0) as u64);
            t += gap;
            if t.since(from) >= window {
                break;
            }
            plan.push(OrganicLike {
                user,
                page: sampler.sample(pop, country, &mut rng),
                at: t,
            });
        }
    }
    plan.sort_by_key(|l| (l.at, l.user));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{synthesize, PopulationConfig};

    fn setup() -> (OsnWorld, Population, PopulationConfig) {
        let mut world = OsnWorld::new();
        let config = PopulationConfig::default().scaled(0.01);
        let mut rng = Rng::seed_from_u64(21);
        let pop = synthesize(&mut world, &config, &mut rng);
        (world, pop, config)
    }

    #[test]
    fn activity_is_chronological_and_windowed() {
        let (world, pop, config) = setup();
        let mut rng = Rng::seed_from_u64(1);
        let window = SimDuration::days(15);
        let plan = plan_background_activity(&world, &pop, &config, pop.launch, window, &mut rng);
        assert!(!plan.is_empty());
        for w in plan.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(plan
            .iter()
            .all(|l| l.at >= pop.launch && l.at.since(pop.launch) < window));
    }

    #[test]
    fn rate_tracks_historical_appetite() {
        let (world, pop, config) = setup();
        let mut rng = Rng::seed_from_u64(2);
        let plan = plan_background_activity(
            &world,
            &pop,
            &config,
            pop.launch,
            SimDuration::days(30),
            &mut rng,
        );
        // Click-prone users (heavy historical likers) should produce far
        // more new likes per capita than organics.
        let cp: std::collections::HashSet<UserId> = pop.click_prone.iter().copied().collect();
        let cp_likes = plan.iter().filter(|l| cp.contains(&l.user)).count() as f64;
        let org_likes = plan.len() as f64 - cp_likes;
        let cp_rate = cp_likes / pop.click_prone.len().max(1) as f64;
        let org_rate = org_likes / pop.organic.len().max(1) as f64;
        assert!(
            cp_rate > org_rate * 4.0,
            "click-prone rate {cp_rate} vs organic {org_rate}"
        );
    }

    #[test]
    fn empty_window_plans_nothing() {
        let (world, pop, config) = setup();
        let mut rng = Rng::seed_from_u64(3);
        let plan = plan_background_activity(
            &world,
            &pop,
            &config,
            pop.launch,
            SimDuration::ZERO,
            &mut rng,
        );
        assert!(plan.is_empty());
    }

    #[test]
    fn pages_are_in_catalogue() {
        let (world, pop, config) = setup();
        let mut rng = Rng::seed_from_u64(4);
        let plan = plan_background_activity(
            &world,
            &pop,
            &config,
            pop.launch,
            SimDuration::days(5),
            &mut rng,
        );
        let catalogue: std::collections::HashSet<PageId> =
            pop.background_pages.iter().copied().collect();
        assert!(plan.iter().all(|l| catalogue.contains(&l.page)));
    }
}
