//! Pages: the unit businesses promote and users like.

use likelab_graph::{PageId, UserId};
use likelab_sim::SimTime;
use serde::{Deserialize, Serialize};

/// What kind of page this is. Background pages fill out users' like
/// histories; honeypot pages are the instrumented ones the study promotes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PageCategory {
    /// A regular page in the background catalogue (brands, bands, memes...).
    Background,
    /// An instrumented honeypot page created by the study.
    Honeypot,
}

/// A page.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Page {
    /// Dense id; equals the index in the page store.
    pub id: PageId,
    /// Display name. All honeypot pages are named "Virtual Electricity",
    /// as in the paper.
    pub name: String,
    /// Page description. Honeypots carry the deflection disclaimer.
    pub description: String,
    /// Creating admin account, when the page has one in-world.
    pub owner: Option<UserId>,
    /// Creation time.
    pub created_at: SimTime,
    /// Category.
    pub category: PageCategory,
}

impl Page {
    /// True for instrumented honeypot pages.
    pub fn is_honeypot(&self) -> bool {
        self.category == PageCategory::Honeypot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honeypot_flag() {
        let p = Page {
            id: PageId(0),
            name: "Virtual Electricity".into(),
            description: "This is not a real page, so please do not like it.".into(),
            owner: Some(UserId(1)),
            created_at: SimTime::EPOCH,
            category: PageCategory::Honeypot,
        };
        assert!(p.is_honeypot());
        let b = Page {
            category: PageCategory::Background,
            ..p
        };
        assert!(!b.is_honeypot());
    }
}
