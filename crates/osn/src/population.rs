//! Organic-population synthesis.
//!
//! Builds the background world the honeypot study runs inside: accounts with
//! country/age/gender demographics, a community-structured friendship graph
//! with heavy-tailed degrees, a Zipf-popular background page catalogue, and
//! per-user like histories.
//!
//! Two account classes come out of here:
//!
//! - **Organic** users: global demographics, median ≈ 34 page likes (the
//!   paper's baseline sample), and no interest whatsoever in honeypot pages
//!   (the pages literally say "do not like this").
//! - **Click-prone** users: the segment legitimate ad campaigns
//!   disproportionately reach — young, mostly male in IN/EG (the paper's
//!   Table 2 shows 93–94% male there), very high page-like counts (median
//!   600–1000 in the paper's Figure 4). Their prevalence per country is a
//!   calibration knob; the paper's FB-ALL campaign landing 96% in India is
//!   reproduced by their geography and by per-country ad prices.
//!
//! Background likes are timestamped inside a *history window* before the
//! campaign launch; the study simply launches at the end of that window.

use crate::account::{ActorClass, PrivacySettings};
use crate::demographics::{AgeBracket, Blueprint, Country, Gender, GLOBAL_AGE_DIST};
use crate::likes::LikeColumns;
use crate::page::PageCategory;
use crate::world::OsnWorld;
use likelab_graph::{generate, PageId, UserId};
use likelab_sim::dist::{log_normal_median, Zipf};
use likelab_sim::{parallel_map, Exec, Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Configuration of the synthetic population.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of organic accounts.
    pub n_organic: usize,
    /// Country mix of the organic population, as weights.
    pub country_mix: Vec<(Country, f64)>,
    /// Click-prone accounts created per country, as a fraction of that
    /// country's organic head-count.
    pub click_prone_fraction: Vec<(Country, f64)>,
    /// Median friend count of organic users (log-normal).
    pub organic_degree_median: f64,
    /// Log-space spread of organic degrees.
    pub organic_degree_sigma: f64,
    /// Median friend count of click-prone users (Table 3's Facebook row:
    /// median 198, mean 315 ± 454).
    pub click_prone_degree_median: f64,
    /// Log-space spread of click-prone degrees.
    pub click_prone_degree_sigma: f64,
    /// Fraction of friendship edges wired across countries rather than
    /// inside the home community.
    pub cross_country_edge_fraction: f64,
    /// Fraction of each user's friends that exist *inside* the simulated
    /// window as real edges; the rest become `off_network_friends` so
    /// reported friend counts stay scale-invariant.
    pub in_world_degree_fraction: f64,
    /// In-world fraction for click-prone users, much lower: the paper's
    /// Facebook likers had only 6 friendships among 1448 people — ad
    /// clickers are scattered individuals whose friends are overwhelmingly
    /// outside any crawlable window, not a community sample.
    pub click_prone_in_world_fraction: f64,
    /// Number of background pages in the catalogue.
    pub n_background_pages: usize,
    /// Fraction of the catalogue that is globally popular; the rest splits
    /// into per-country slices (Indian users mostly like Indian pages).
    /// The slicing is what keeps Figure 5(a)'s cross-campaign page
    /// similarities from washing out: campaigns only overlap through the
    /// global head and shared slices.
    pub global_page_fraction: f64,
    /// Fraction of each user's background likes drawn from the global head
    /// rather than their country slice.
    pub global_like_fraction: f64,
    /// Zipf exponent of page popularity.
    pub zipf_exponent: f64,
    /// Median background-like count of organic users (the paper's baseline:
    /// median 34, mean ≈ 40).
    pub organic_like_median: f64,
    /// Log-space spread of organic like counts.
    pub organic_like_sigma: f64,
    /// Median like count of click-prone users (paper: 600–1000).
    pub click_prone_like_median: f64,
    /// Log-space spread of click-prone like counts.
    pub click_prone_like_sigma: f64,
    /// Probability an organic account has a public friend list (the paper
    /// observed ~80% of Facebook-campaign likers keeping it private).
    pub organic_friend_list_public: f64,
    /// Probability a click-prone account has a public friend list
    /// (Table 3: 18% for the Facebook group).
    pub click_prone_friend_list_public: f64,
    /// Probability the liked-page list is public (page likes were broadly
    /// crawlable in 2014).
    pub likes_public: f64,
    /// Probability an account appears in the public directory.
    pub searchable: f64,
    /// Length of the pre-launch history window the background likes are
    /// spread over.
    pub history: SimDuration,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            n_organic: 60_000,
            // Calibrated mix: the countries the study touches are
            // over-weighted relative to the real platform so that scaled-down
            // worlds still contain enough of each audience (documented in
            // DESIGN.md — a scale artifact, not a claim about Facebook).
            country_mix: vec![
                (Country::Usa, 0.13),
                (Country::France, 0.05),
                (Country::India, 0.16),
                (Country::Egypt, 0.08),
                (Country::Turkey, 0.07),
                (Country::Brazil, 0.12),
                (Country::Indonesia, 0.11),
                (Country::Philippines, 0.08),
                (Country::Uk, 0.06),
                (Country::Mexico, 0.14),
            ],
            click_prone_fraction: vec![
                (Country::Usa, 0.010),
                (Country::France, 0.020),
                (Country::India, 0.16),
                (Country::Egypt, 0.15),
                (Country::Turkey, 0.035),
                (Country::Brazil, 0.020),
                (Country::Indonesia, 0.030),
                (Country::Philippines, 0.030),
                (Country::Uk, 0.008),
                (Country::Mexico, 0.015),
            ],
            organic_degree_median: 120.0,
            organic_degree_sigma: 0.9,
            click_prone_degree_median: 198.0,
            click_prone_degree_sigma: 1.0,
            cross_country_edge_fraction: 0.12,
            in_world_degree_fraction: 0.5,
            click_prone_in_world_fraction: 0.025,
            n_background_pages: 30_000,
            global_page_fraction: 0.4,
            global_like_fraction: 0.55,
            zipf_exponent: 1.05,
            organic_like_median: 34.0,
            organic_like_sigma: 1.1,
            click_prone_like_median: 750.0,
            click_prone_like_sigma: 0.8,
            organic_friend_list_public: 0.25,
            click_prone_friend_list_public: 0.18,
            likes_public: 0.95,
            searchable: 0.85,
            history: SimDuration::days(365),
        }
    }
}

impl PopulationConfig {
    /// Scale the population size down (or up) by `factor`, keeping all
    /// distributional parameters fixed. Campaign like-targets scale with the
    /// same factor in the study runner, so percentages survive.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale must be positive");
        self.n_organic = ((self.n_organic as f64 * factor).round() as usize).max(100);
        // The catalogue must stay much larger than the heaviest per-user like
        // count, or Zipf dedup would silently compress everyone's history
        // and Figure 5(a)'s similarities would saturate.
        self.n_background_pages = ((self.n_background_pages as f64 * factor).round() as usize)
            .max(12_000)
            .max((self.click_prone_like_median * 8.0) as usize);
        // The in-world share of each friend list shrinks with the world so
        // the graph stays sparse at tiny scales; *total* friend counts (what
        // Table 3 reports) stay fixed via off-network top-up.
        if factor < 1.0 {
            self.in_world_degree_fraction =
                (self.in_world_degree_fraction * factor.max(0.02).sqrt()).max(0.02);
            self.click_prone_in_world_fraction =
                (self.click_prone_in_world_fraction * factor.max(0.02).sqrt()).max(0.005);
        }
        self
    }
}

/// Handles into the synthesized population, used by the ad engine and the
/// public-directory sampler.
///
/// Serializable so checkpoint/resume can carry it across a process restart.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Population {
    /// All organic account ids.
    pub organic: Vec<UserId>,
    /// All click-prone account ids.
    pub click_prone: Vec<UserId>,
    /// Click-prone ids per country (the ad auction's reachable audiences).
    /// Ordered map: iteration order must be deterministic (seeded runs).
    pub click_prone_by_country: BTreeMap<Country, Vec<UserId>>,
    /// Background page catalogue ids (global head followed by slices).
    pub background_pages: Vec<PageId>,
    /// The globally popular head of the catalogue.
    pub global_pages: Vec<PageId>,
    /// Per-country page slices (local brands, media, memes).
    pub country_slices: BTreeMap<Country, Vec<PageId>>,
    /// When the campaign launch happens (end of the history window).
    pub launch: SimTime,
}

/// Samples background pages with the global-head/country-slice mixture.
pub struct BackgroundSampler {
    global_zipf: Zipf,
    slice_zipfs: BTreeMap<Country, Zipf>,
    global_like_fraction: f64,
}

impl BackgroundSampler {
    /// Build a sampler over the population's catalogue.
    pub fn new(pop: &Population, config: &PopulationConfig) -> Self {
        BackgroundSampler {
            global_zipf: Zipf::new(pop.global_pages.len().max(1), config.zipf_exponent),
            slice_zipfs: pop
                .country_slices
                .iter()
                .map(|(c, pages)| (*c, Zipf::new(pages.len().max(1), config.zipf_exponent)))
                .collect(),
            global_like_fraction: config.global_like_fraction,
        }
    }

    /// One background page draw for a user from `country`.
    pub fn sample(&self, pop: &Population, country: Country, rng: &mut Rng) -> PageId {
        let use_global = pop
            .country_slices
            .get(&country)
            .map(|s| s.is_empty())
            .unwrap_or(true)
            || rng.chance(self.global_like_fraction);
        if use_global {
            pop.global_pages[self.global_zipf.sample(rng)]
        } else {
            let slice = &pop.country_slices[&country];
            slice[self.slice_zipfs[&country].sample(rng)]
        }
    }
}

/// Demographic blueprint of the click-prone segment in one country.
///
/// Calibrated to Table 2: FB-USA likers were 54% female and very young;
/// FB-IND/FB-EGY were 93/82% male and 13–24. The blueprint interpolates:
/// western clickers skew young-female, the rest young-male.
fn click_prone_blueprint(country: Country) -> Blueprint {
    let (female, ages) = match country {
        Country::Usa => (0.54, [0.54, 0.27, 0.07, 0.07, 0.01, 0.04]),
        Country::France => (0.46, [0.61, 0.21, 0.09, 0.02, 0.05, 0.02]),
        Country::India => (0.07, [0.53, 0.43, 0.02, 0.01, 0.005, 0.005]),
        Country::Egypt => (0.18, [0.55, 0.34, 0.06, 0.03, 0.01, 0.01]),
        _ => (0.20, [0.45, 0.40, 0.08, 0.04, 0.02, 0.01]),
    };
    Blueprint {
        female_fraction: female,
        age_weights: ages,
        country_weights: vec![(country, 1.0)],
    }
}

thread_local! {
    /// Epoch-stamped page-membership scratch for like-history dedup:
    /// `stamps[page] == epoch` means "this user already drew that page".
    /// Bumping the epoch clears the set in O(1) between users.
    static SEEN_STAMPS: std::cell::RefCell<(Vec<u32>, u32)> =
        const { std::cell::RefCell::new((Vec::new(), 0)) };
}

/// Synthesize the population into `world`, returning the handles.
///
/// Uses [`Exec::auto`] for the parallel like-history stage; see
/// [`synthesize_with`] for the determinism contract.
pub fn synthesize(world: &mut OsnWorld, config: &PopulationConfig, rng: &mut Rng) -> Population {
    synthesize_with(world, config, rng, Exec::auto())
}

/// Synthesize the population into `world` under an explicit execution policy.
///
/// Account creation and graph wiring mutate the world arena and stay
/// sequential. Like-history synthesis — the dominant cost at paper scale —
/// fans out per user: user `j` draws from `likes_rng.split(j)`, a stream that
/// depends only on the seed and the user's index, so the flattened history is
/// the same for [`Exec::Sequential`] and any worker count.
pub fn synthesize_with(
    world: &mut OsnWorld,
    config: &PopulationConfig,
    rng: &mut Rng,
    exec: Exec,
) -> Population {
    likelab_obs::span!("population.synthesize");
    let mut pop = Population {
        launch: SimTime::EPOCH + config.history,
        ..Population::default()
    };
    let mut account_rng = rng.fork("population.accounts");
    let mut graph_rng = rng.fork("population.graph");
    let likes_rng = rng.fork("population.likes");

    // --- accounts, grouped by country ---------------------------------
    let accounts_span = likelab_obs::span::enter("population.accounts");
    let total_weight: f64 = config.country_mix.iter().map(|(_, w)| w).sum();
    let mut organic_by_country: BTreeMap<Country, Vec<UserId>> = BTreeMap::new();
    let mut degree_target: Vec<(UserId, f64)> = Vec::new();

    for (country, weight) in &config.country_mix {
        let n_c = ((config.n_organic as f64) * weight / total_weight).round() as usize;
        let blueprint = Blueprint::global_with_countries(vec![(*country, 1.0)]);
        let mut ids = Vec::with_capacity(n_c);
        for _ in 0..n_c {
            let profile = blueprint.sample(&mut account_rng);
            let privacy = PrivacySettings {
                friend_list_public: account_rng.chance(config.organic_friend_list_public),
                likes_public: account_rng.chance(config.likes_public),
                searchable: account_rng.chance(config.searchable),
            };
            // Account ages: organic accounts were created throughout the
            // platform's life — anywhere in the history window.
            let created = SimTime::from_secs(account_rng.below(config.history.as_secs().max(1)));
            let id = world.create_account(profile, ActorClass::Organic, privacy, created);
            let target = log_normal_median(
                &mut account_rng,
                config.organic_degree_median,
                config.organic_degree_sigma,
            );
            degree_target.push((id, target.min(5_000.0)));
            ids.push(id);
            pop.organic.push(id);
        }

        // Click-prone accounts for this country.
        let frac = config
            .click_prone_fraction
            .iter()
            .find(|(c, _)| c == country)
            .map(|(_, f)| *f)
            .unwrap_or(0.0);
        let n_cp = ((n_c as f64) * frac).round() as usize;
        let cp_blueprint = click_prone_blueprint(*country);
        let mut cp_ids = Vec::with_capacity(n_cp);
        for _ in 0..n_cp {
            let profile = cp_blueprint.sample(&mut account_rng);
            let privacy = PrivacySettings {
                friend_list_public: account_rng.chance(config.click_prone_friend_list_public),
                likes_public: account_rng.chance(config.likes_public),
                searchable: account_rng.chance(config.searchable),
            };
            let created = SimTime::from_secs(account_rng.below(config.history.as_secs().max(1)));
            let id = world.create_account(profile, ActorClass::ClickProne, privacy, created);
            let target = log_normal_median(
                &mut account_rng,
                config.click_prone_degree_median,
                config.click_prone_degree_sigma,
            );
            degree_target.push((id, target.min(5_000.0)));
            cp_ids.push(id);
            pop.click_prone.push(id);
            ids.push(id);
        }
        pop.click_prone_by_country.insert(*country, cp_ids);
        organic_by_country.insert(*country, ids);
    }
    drop(accounts_span);
    let graph_span = likelab_obs::span::enter("population.graph");

    // --- friendships ----------------------------------------------------
    // Each account carries a scale-invariant *total* friend-count target;
    // only a small in-world fraction becomes real edges (within-country
    // Chung–Lu among organics plus a cross-country slice for global
    // connectivity — mutual friends across communities feed the 2-hop
    // analysis). The rest is topped up as off-network friends afterwards.
    //
    // Click-prone users attach *to organics only*, and sparsely: the
    // paper's Facebook-campaign likers shared almost no friendships with
    // each other (6 among 1448) — they are scattered individuals, not a
    // community. Wiring them into the compressed community graph like
    // everyone else would fabricate a dense liker graph the real study
    // never saw.
    let target_of: HashMap<UserId, f64> = degree_target.iter().copied().collect();
    let cp_set: std::collections::HashSet<UserId> = pop.click_prone.iter().copied().collect();
    let in_world = config.in_world_degree_fraction.clamp(0.0, 1.0);
    let cp_in_world = config.click_prone_in_world_fraction.clamp(0.0, 1.0);
    for (country, members) in &organic_by_country {
        let organics: Vec<UserId> = members
            .iter()
            .copied()
            .filter(|u| !cp_set.contains(u))
            .collect();
        let targets: Vec<f64> = organics
            .iter()
            .map(|u| target_of[u] * in_world * (1.0 - config.cross_country_edge_fraction))
            .collect();
        world.generate_friendships(|g| generate::chung_lu(g, &organics, &targets, &mut graph_rng));
        // Click-prone attachment: a handful of edges into the organic
        // community, never to other clickers.
        if organics.is_empty() {
            continue;
        }
        let clickers = pop
            .click_prone_by_country
            .get(country)
            .cloned()
            .unwrap_or_default();
        for cp in clickers {
            let k = (target_of[&cp] * cp_in_world).round() as usize;
            for _ in 0..k {
                let friend = organics[graph_rng.index(organics.len())];
                world.add_friendship(cp, friend);
            }
        }
    }
    let all_organics: Vec<UserId> = pop.organic.clone();
    let cross_targets: Vec<f64> = all_organics
        .iter()
        .map(|u| target_of[u] * in_world * config.cross_country_edge_fraction)
        .collect();
    world.generate_friendships(|g| {
        generate::chung_lu(g, &all_organics, &cross_targets, &mut graph_rng)
    });
    for (u, total) in &degree_target {
        let realized = world.friends().degree(*u) as f64;
        let off = (total - realized).max(0.0).round() as u32;
        world.set_off_network_friends(*u, off);
    }
    drop(graph_span);
    let catalogue_span = likelab_obs::span::enter("population.catalogue");

    // --- background catalogue: global head + country slices ---------------
    let n_global =
        ((config.n_background_pages as f64) * config.global_page_fraction).round() as usize;
    for i in 0..n_global {
        let id = world.create_page(
            format!("bg-global-{i}"),
            "",
            None,
            PageCategory::Background,
            SimTime::EPOCH,
        );
        pop.background_pages.push(id);
        pop.global_pages.push(id);
    }
    let slice_total = config.n_background_pages - n_global;
    for (country, weight) in &config.country_mix {
        let n_slice = (((slice_total as f64) * weight / total_weight).round() as usize).max(50);
        let mut slice = Vec::with_capacity(n_slice);
        for i in 0..n_slice {
            let id = world.create_page(
                format!("bg-{country}-{i}"),
                "",
                None,
                PageCategory::Background,
                SimTime::EPOCH,
            );
            pop.background_pages.push(id);
            slice.push(id);
        }
        pop.country_slices.insert(*country, slice);
    }
    drop(catalogue_span);
    likelab_obs::span!("population.likes");

    // --- like histories ----------------------------------------------------
    // The dominant cost at full scale, and embarrassingly parallel: every
    // user's history is an independent draw. User `j` gets the split stream
    // `likes_rng.split(j)` — a pure function of the seed and the index — so
    // shards can run on any worker in any order and still produce exactly
    // the history the sequential loop would.
    let sampler = BackgroundSampler::new(&pop, config);
    let history_secs = config.history.as_secs().max(1);
    let jobs: Vec<(UserId, Country, f64, f64)> = pop
        .organic
        .iter()
        .map(|u| (*u, config.organic_like_median, config.organic_like_sigma))
        .chain(pop.click_prone.iter().map(|u| {
            (
                *u,
                config.click_prone_like_median,
                config.click_prone_like_sigma,
            )
        }))
        .map(|(id, median, sigma)| (id, world.profile(id).country, median, sigma))
        .collect();
    let n_total_pages = world.page_count();
    let shards = parallel_map(exec, &jobs, |j, &(id, country, median, sigma)| {
        let mut user_rng = likes_rng.split(j as u64);
        let n_likes = log_normal_median(&mut user_rng, median, sigma).round() as usize;
        let n_likes = n_likes.min(config.n_background_pages / 2).min(10_000);
        // Distinct pages: Zipf concentrates mass on the head, so rejection
        // on a per-user seen-set keeps realized like counts on target. The
        // set is an epoch-stamped array indexed by page id — thread-local
        // scratch reused across users, so dedup costs one word probe
        // instead of a hash per draw and allocates nothing per user.
        // Membership answers are exactly a `HashSet`'s, so the RNG stream
        // is unchanged.
        let mut likes = Vec::with_capacity(n_likes);
        let mut accepted = 0usize;
        let mut attempts = 0usize;
        SEEN_STAMPS.with(|cell| {
            let (stamps, epoch) = &mut *cell.borrow_mut();
            if stamps.len() < n_total_pages {
                stamps.resize(n_total_pages, 0);
            }
            *epoch += 1;
            if *epoch == 0 {
                stamps.fill(0);
                *epoch = 1;
            }
            while accepted < n_likes && attempts < n_likes * 8 + 16 {
                attempts += 1;
                let page = sampler.sample(&pop, country, &mut user_rng);
                let slot = &mut stamps[page.idx()];
                if *slot != *epoch {
                    *slot = *epoch;
                    accepted += 1;
                    let at = SimTime::from_secs(user_rng.below(history_secs));
                    likes.push((at, id, page));
                }
            }
        });
        likes
    });
    // Draw rows carry the sort key up front: `(at, user, page)` *is* the
    // global ordering key, so the flattened batch sorts by plain value.
    let mut pending: Vec<(SimTime, UserId, PageId)> = shards.into_iter().flatten().collect();
    likelab_obs::metrics::counter("likes.synthesized", pending.len() as u64);
    // The ledger requires chronological per-page streams: sort globally,
    // split into columns, then bulk-ingest through the sharded columnar
    // path (per-shard page indexing runs through `exec`; the outcome is
    // identical to recording each like in order).
    // Unstable is safe: the key `(at, u, p)` determines the whole element,
    // so equal keys mean equal elements and order among them is moot — any
    // comparison sort yields the same permutation.
    let sort_span = likelab_obs::span::enter("population.likes.sort");
    pending.sort_unstable();
    drop(sort_span);
    // Transpose the sorted rows into the SoA column batch the ledger
    // ingests directly (one linear pass; the rows are freed before ingest
    // so the transient batch does not stack on top of them).
    let split_span = likelab_obs::span::enter("population.likes.split");
    let mut cols = LikeColumns::with_capacity(pending.len());
    for &(at, user, page) in &pending {
        cols.push(user, page, at);
    }
    drop(pending);
    drop(split_span);
    let ingest_span = likelab_obs::span::enter("population.likes.ingest");
    world.ingest_like_columns(&cols, exec);
    drop(ingest_span);
    drop(cols);

    pop
}

/// Age distribution (fractions over the six brackets) of a set of accounts —
/// convenience used by tests and the calibration benches.
pub fn age_distribution(world: &OsnWorld, users: &[UserId]) -> [f64; 6] {
    let mut counts = [0usize; 6];
    for u in users {
        counts[world.profile(*u).age_bracket().index()] += 1;
    }
    let total = users.len().max(1) as f64;
    let mut out = [0.0; 6];
    for (i, c) in counts.iter().enumerate() {
        out[i] = *c as f64 / total;
    }
    out
}

/// Female fraction of a set of accounts.
pub fn female_fraction(world: &OsnWorld, users: &[UserId]) -> f64 {
    if users.is_empty() {
        return 0.0;
    }
    users
        .iter()
        .filter(|u| world.profile(**u).gender == Gender::Female)
        .count() as f64
        / users.len() as f64
}

/// Sanity helper: checks the global age marginals roughly hold for a user
/// set (used in tests; tolerance in absolute fraction per bracket).
pub fn age_matches_global(dist: &[f64; 6], tolerance: f64) -> bool {
    AgeBracket::ALL
        .iter()
        .enumerate()
        .all(|(i, _)| (dist[i] - GLOBAL_AGE_DIST[i]).abs() <= tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> PopulationConfig {
        PopulationConfig::default().scaled(0.02) // 1200 organics
    }

    fn build() -> (OsnWorld, Population, PopulationConfig) {
        let mut world = OsnWorld::new();
        let config = small_config();
        let mut rng = Rng::seed_from_u64(7);
        let pop = synthesize(&mut world, &config, &mut rng);
        (world, pop, config)
    }

    #[test]
    fn population_sizes_match_config() {
        let (world, pop, config) = build();
        assert!(
            (pop.organic.len() as f64 / config.n_organic as f64 - 1.0).abs() < 0.02,
            "organic count {} vs {}",
            pop.organic.len(),
            config.n_organic
        );
        assert!(!pop.click_prone.is_empty());
        assert_eq!(
            world.account_count(),
            pop.organic.len() + pop.click_prone.len()
        );
        assert_eq!(world.page_count(), config.n_background_pages);
    }

    #[test]
    fn click_prone_geography_is_skewed() {
        let (_, pop, _) = build();
        let india = pop.click_prone_by_country[&Country::India].len();
        let usa = pop.click_prone_by_country[&Country::Usa].len();
        assert!(
            india > usa * 5,
            "India clickers ({india}) should dwarf USA ({usa})"
        );
    }

    #[test]
    fn organic_demographics_match_global_marginals() {
        let (world, pop, _) = build();
        let dist = age_distribution(&world, &pop.organic);
        assert!(
            age_matches_global(&dist, 0.04),
            "organic age dist {dist:?} vs global {GLOBAL_AGE_DIST:?}"
        );
        let f = female_fraction(&world, &pop.organic);
        assert!((f - 0.46).abs() < 0.04, "female fraction {f}");
    }

    #[test]
    fn click_prone_india_is_young_and_male() {
        let (world, pop, _) = build();
        let india = &pop.click_prone_by_country[&Country::India];
        let f = female_fraction(&world, india);
        assert!(f < 0.15, "India clickers should be male-heavy, {f}");
        let dist = age_distribution(&world, india);
        assert!(
            dist[0] + dist[1] > 0.9,
            "India clickers should be 13-24, {dist:?}"
        );
    }

    #[test]
    fn organic_like_median_tracks_baseline() {
        let (world, pop, config) = build();
        let mut counts: Vec<usize> = pop
            .organic
            .iter()
            .map(|u| world.likes().user_like_count(*u))
            .collect();
        counts.sort_unstable();
        let median = counts[counts.len() / 2] as f64;
        assert!(
            (median / config.organic_like_median - 1.0).abs() < 0.25,
            "median {median} vs target {}",
            config.organic_like_median
        );
    }

    #[test]
    fn click_prone_like_far_more_pages() {
        let (world, pop, _) = build();
        let median = |ids: &[UserId]| {
            let mut c: Vec<usize> = ids
                .iter()
                .map(|u| world.likes().user_like_count(*u))
                .collect();
            c.sort_unstable();
            c[c.len() / 2]
        };
        let org = median(&pop.organic);
        let cp = median(&pop.click_prone);
        assert!(
            cp > org * 5,
            "click-prone median {cp} should dwarf organic {org}"
        );
    }

    #[test]
    fn friendship_graph_is_populated_and_connected_enough() {
        let (world, pop, _) = build();
        let mean_deg = 2.0 * world.friends().edge_count() as f64 / world.account_count() as f64;
        assert!(mean_deg > 4.0, "mean degree {mean_deg} too low");
        // A sample of users should mostly have at least one friend.
        let friendless = pop
            .organic
            .iter()
            .take(500)
            .filter(|u| world.friends().degree(**u) == 0)
            .count();
        assert!(friendless < 150, "{friendless} of 500 friendless");
    }

    #[test]
    fn background_like_times_are_pre_launch() {
        let (world, pop, _) = build();
        for r in world.likes().records().take(10_000) {
            assert!(r.at < pop.launch, "background like after launch");
        }
    }

    #[test]
    fn parallel_synthesis_is_bit_identical_to_sequential() {
        let run = |exec: Exec| {
            let mut world = OsnWorld::new();
            let config = small_config();
            let mut rng = Rng::seed_from_u64(77);
            let pop = synthesize_with(&mut world, &config, &mut rng, exec);
            let likes: Vec<_> = world
                .likes()
                .records()
                .map(|r| (r.user, r.page, r.at))
                .collect();
            (likes, pop.organic.len(), pop.click_prone.len())
        };
        let sequential = run(Exec::Sequential);
        for workers in [2, 5] {
            assert_eq!(sequential, run(Exec::workers(workers)), "workers={workers}");
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let run = || {
            let mut world = OsnWorld::new();
            let config = small_config();
            let mut rng = Rng::seed_from_u64(1234);
            let pop = synthesize(&mut world, &config, &mut rng);
            (
                world.likes().len(),
                world.friends().edge_count(),
                pop.click_prone.len(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scaled_config_shrinks_world_not_observables() {
        let base = PopulationConfig::default();
        let small = PopulationConfig::default().scaled(0.1);
        assert!(small.n_organic < base.n_organic / 5);
        assert_eq!(small.organic_like_median, base.organic_like_median);
        // Total friend-count targets stay fixed; only the in-world share
        // shrinks.
        assert_eq!(small.organic_degree_median, base.organic_degree_median);
        assert!(small.in_world_degree_fraction < base.in_world_degree_fraction);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = PopulationConfig::default().scaled(0.0);
    }
}
