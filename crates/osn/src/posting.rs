//! Bit-packed, delta-encoded posting lists.
//!
//! The like ledger stores, for every page and every user, the list of global
//! record indices of their likes. Those indices are strictly increasing by
//! construction (records only append), which makes the lists ideal for
//! delta encoding: a posting list of `n` entries over a ledger of `N`
//! records costs about `n * log2(N / n) / 8` bytes instead of `4 * n`.
//!
//! ## Block format (version 1)
//!
//! A list is a sequence of full **blocks** of [`BLOCK`] values in a byte
//! buffer, followed by an uncompressed `tail` of fewer than [`BLOCK`] raw
//! values. Each block is
//!
//! ```text
//! [ width: u8 ][ ceil(BLOCK * width / 8) bytes, LSB-first bit stream ]
//! ```
//!
//! where each packed field is `v[i] - v[i-1] - 1` (the gap minus one, with
//! an implicit `v[-1] = -1`), so a run of *consecutive* indices — a page
//! that received every like in a stretch of the ledger — packs at width 0:
//! sixty-four values in one header byte. `width` is the bit width of the
//! largest gap in the block, at most 32.
//!
//! The format is versioned alongside the event-log schema (see DESIGN.md):
//! checkpoints embed these buffers, so any layout change must bump
//! [`FORMAT_VERSION`] and keep a decoder for the old layout.
//!
//! Decoding is allocation-free: [`PostingList::iter`] walks blocks through a
//! fixed 64-slot buffer, so consumers (report aggregation, fanout, the
//! sweep's burstiness feature) never materialize an index `Vec`.

use serde::{Deserialize, Serialize};

/// Values per packed block.
pub const BLOCK: usize = 64;

/// On-disk/in-checkpoint format version of the block layout.
pub const FORMAT_VERSION: u32 = 1;

/// A compressed list of strictly increasing `u32` values.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingList {
    /// Encoded full blocks (see module docs for the layout).
    packed: Vec<u8>,
    /// Most recent `len % BLOCK` values, raw.
    tail: Vec<u32>,
    /// Total number of values.
    len: u32,
    /// Last value of the packed section plus one (0 when no packed block
    /// exists yet); the base the next flushed block's first gap is encoded
    /// against. Held as `u64` so a packed block ending at `u32::MAX` keeps a
    /// representable base (`2^32`) — the codec covers the full u32 domain.
    packed_base: u64,
    /// Last value overall plus one (0 when empty); enforces monotonicity.
    /// `u64` for the same reason as `packed_base`: `last_plus` reaches
    /// `2^32` once `u32::MAX` itself is pushed.
    last_plus: u64,
}

impl PostingList {
    /// An empty list.
    pub fn new() -> Self {
        PostingList::default()
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no value was pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The most recent value, if any.
    pub fn last(&self) -> Option<u32> {
        // lint:allow(cast): last_plus - 1 fits u32 whenever the list is
        // non-empty (values are u32).
        self.last_plus.checked_sub(1).map(|v| v as u32)
    }

    /// Append `v`, which must be strictly greater than every value pushed
    /// so far. The full u32 domain is representable, `u32::MAX` included.
    ///
    /// # Panics
    /// Panics when monotonicity is violated.
    #[inline]
    pub fn push(&mut self, v: u32) {
        assert!(
            u64::from(v) >= self.last_plus,
            "posting values must be strictly increasing: {v} after {:?}",
            self.last()
        );
        self.tail.push(v);
        self.last_plus = u64::from(v) + 1;
        self.len += 1;
        if self.tail.len() == BLOCK {
            self.flush_tail();
        }
    }

    /// Append every value of an increasing slice (each must exceed
    /// [`last`][Self::last]).
    ///
    /// Bulk path for the batch-ingest kernels: the head of `values` tops up
    /// the raw tail, full [`BLOCK`]s are then encoded straight from the
    /// slice (no per-value dispatch through [`push`][Self::push]), and the
    /// remainder lands in the tail. The encoded bytes are identical to a
    /// push-per-value loop — the block format only depends on the value
    /// sequence.
    pub fn extend_from_increasing(&mut self, values: &[u32]) {
        let mut rest = values;
        // Top up a partially filled tail to a block boundary first.
        if !self.tail.is_empty() {
            let take = rest.len().min(BLOCK - self.tail.len());
            for &v in &rest[..take] {
                self.push(v);
            }
            rest = &rest[take..];
        }
        debug_assert!(rest.is_empty() || self.tail.is_empty());
        while rest.len() >= BLOCK {
            let (block, tail) = rest.split_at(BLOCK);
            assert!(
                u64::from(block[0]) >= self.last_plus,
                "posting values must be strictly increasing: {v} after {last:?}",
                v = block[0],
                last = self.last()
            );
            self.encode_block(block);
            self.len += BLOCK as u32;
            self.last_plus = self.packed_base;
            rest = tail;
        }
        for &v in rest {
            self.push(v);
        }
    }

    /// Encode the (full) tail as one block.
    fn flush_tail(&mut self) {
        debug_assert_eq!(self.tail.len(), BLOCK);
        let tail = std::mem::take(&mut self.tail);
        self.encode_block(&tail);
        self.tail = tail;
        self.tail.clear();
    }

    /// Append one full block of increasing values (already validated
    /// against `last_plus`) to the packed section.
    fn encode_block(&mut self, values: &[u32]) {
        debug_assert_eq!(values.len(), BLOCK);
        let mut gaps = [0u32; BLOCK];
        let mut base = self.packed_base;
        let mut all = 0u32;
        for (gap, &v) in gaps.iter_mut().zip(values.iter()) {
            debug_assert!(u64::from(v) >= base, "non-monotone block");
            // Gaps fit u32 even at the domain edge: v - base <= u32::MAX
            // because base >= 0 and v <= u32::MAX.
            *gap = (u64::from(v) - base) as u32;
            all |= *gap;
            base = u64::from(v) + 1;
        }
        let width = (32 - all.leading_zeros()) as u8;
        self.packed
            .reserve(1 + (BLOCK * width as usize).div_ceil(8));
        self.packed.push(width);
        let mut acc = 0u64;
        let mut bits = 0u32;
        for &gap in &gaps {
            acc |= u64::from(gap) << bits;
            bits += u32::from(width);
            while bits >= 8 {
                self.packed.push(acc as u8);
                acc >>= 8;
                bits -= 8;
            }
        }
        if bits > 0 {
            self.packed.push(acc as u8);
        }
        self.packed_base = base;
    }

    /// Iterate the values in increasing order, without allocating.
    pub fn iter(&self) -> PostingIter<'_> {
        PostingIter {
            packed: &self.packed,
            tail: &self.tail,
            tail_pos: 0,
            buf: [0; BLOCK],
            buf_len: 0,
            buf_pos: 0,
            base: 0,
            remaining: self.len,
        }
    }

    /// Bytes of heap storage currently held (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        self.packed.capacity() + self.tail.capacity() * 4
    }
}

impl<'a> IntoIterator for &'a PostingList {
    type Item = u32;
    type IntoIter = PostingIter<'a>;

    fn into_iter(self) -> PostingIter<'a> {
        self.iter()
    }
}

/// Allocation-free iterator over a [`PostingList`], one decoded block at a
/// time.
#[derive(Clone, Debug)]
pub struct PostingIter<'a> {
    packed: &'a [u8],
    tail: &'a [u32],
    tail_pos: usize,
    buf: [u32; BLOCK],
    buf_len: u8,
    buf_pos: u8,
    /// Last decoded value plus one (`u64`: reaches `2^32` after decoding
    /// `u32::MAX`).
    base: u64,
    remaining: u32,
}

impl PostingIter<'_> {
    /// Decode the next packed block into the buffer.
    fn refill(&mut self) {
        let width = u32::from(self.packed[0]);
        let payload = (BLOCK * width as usize).div_ceil(8);
        let bytes = &self.packed[1..1 + payload];
        let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
        let mut acc = 0u64;
        let mut bits = 0u32;
        let mut byte_i = 0usize;
        let mut base = self.base;
        for slot in self.buf.iter_mut() {
            while bits < width {
                acc |= u64::from(bytes[byte_i]) << bits;
                byte_i += 1;
                bits += 8;
            }
            // lint:allow(cast): base + gap reproduces a pushed u32 exactly.
            let v = (base + (acc & mask)) as u32;
            acc >>= width;
            bits -= width;
            *slot = v;
            base = u64::from(v) + 1;
        }
        self.base = base;
        self.packed = &self.packed[1 + payload..];
        self.buf_len = BLOCK as u8;
        self.buf_pos = 0;
    }
}

impl Iterator for PostingIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.buf_pos < self.buf_len {
            let v = self.buf[self.buf_pos as usize];
            self.buf_pos += 1;
            self.remaining -= 1;
            return Some(v);
        }
        if !self.packed.is_empty() {
            self.refill();
            return self.next();
        }
        if self.tail_pos < self.tail.len() {
            let v = self.tail[self.tail_pos];
            self.tail_pos += 1;
            self.remaining -= 1;
            return Some(v);
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for PostingIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) {
        let mut list = PostingList::new();
        for &v in values {
            list.push(v);
        }
        assert_eq!(list.len(), values.len());
        assert_eq!(list.last(), values.last().copied());
        let decoded: Vec<u32> = list.iter().collect();
        assert_eq!(decoded, values, "round-trip mismatch");
        assert_eq!(list.iter().len(), values.len());
    }

    #[test]
    fn empty_list() {
        let list = PostingList::new();
        assert!(list.is_empty());
        assert_eq!(list.last(), None);
        assert_eq!(list.iter().count(), 0);
    }

    #[test]
    fn consecutive_values_pack_at_width_zero() {
        let values: Vec<u32> = (0..256).collect();
        let mut list = PostingList::new();
        list.extend_from_increasing(&values);
        // Four full blocks, one header byte each, no payload.
        assert_eq!(list.packed.len(), 4);
        assert_eq!(list.iter().collect::<Vec<u32>>(), values);
    }

    #[test]
    fn exact_block_boundaries() {
        for n in [63usize, 64, 65, 127, 128, 129, 640] {
            let values: Vec<u32> = (0..n as u32).map(|i| i * 3 + 1).collect();
            roundtrip(&values);
        }
    }

    #[test]
    fn wide_gaps_roundtrip() {
        roundtrip(&[0, 1, u32::MAX / 2, u32::MAX - 2]);
        let mut wide: Vec<u32> = (0..200).map(|i| i * 21_000_000).collect();
        wide.dedup();
        roundtrip(&wide);
    }

    #[test]
    fn mixed_density_blocks() {
        // Alternating dense runs and jumps across many blocks.
        let mut values = Vec::new();
        let mut v = 5u32;
        for chunk in 0..40 {
            for _ in 0..50 {
                values.push(v);
                v += 1 + (chunk % 3);
            }
            v += 1 << (chunk % 20);
        }
        roundtrip(&values);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_push_panics() {
        let mut list = PostingList::new();
        list.push(5);
        list.push(5);
    }

    #[test]
    fn u32_max_in_tail_roundtrips() {
        // Regression: the codec once excluded u32::MAX so the running
        // "last plus one" base stayed representable in u32. The full domain
        // must round-trip — here MAX sits in the raw tail.
        roundtrip(&[7, u32::MAX - 1, u32::MAX]);
        let mut list = PostingList::new();
        list.push(u32::MAX);
        assert_eq!(list.last(), Some(u32::MAX));
        assert_eq!(list.iter().collect::<Vec<u32>>(), vec![u32::MAX]);
    }

    #[test]
    fn u32_max_inside_packed_block_roundtrips() {
        // MAX as the final value of a *flushed* block: the post-block base
        // is 2^32, which only fits the widened u64 bases. Also exercises a
        // follow-up serde round-trip of the boundary state.
        let values: Vec<u32> = (0..BLOCK as u32).map(|i| u32::MAX - 63 + i).collect();
        assert_eq!(*values.last().unwrap(), u32::MAX);
        roundtrip(&values);
        let mut list = PostingList::new();
        list.extend_from_increasing(&values);
        assert!(list.tail.is_empty(), "block must have flushed");
        let json = serde_json::to_string(&list).expect("serialize");
        let back: PostingList = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.iter().collect::<Vec<u32>>(), values);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_after_u32_max_panics() {
        let mut list = PostingList::new();
        list.push(u32::MAX);
        list.push(u32::MAX); // nothing can follow the domain maximum
    }

    #[test]
    fn bulk_extend_bytes_match_per_value_pushes() {
        // The block-at-a-time encoder must emit the exact bytes a per-value
        // push loop would, for every tail/block phase alignment.
        let values: Vec<u32> = (0..500u32)
            .map(|i| i * 17 + (i % 5))
            .chain([u32::MAX - 1, u32::MAX])
            .collect();
        for split in [0usize, 1, 37, 63, 64, 65, 200, values.len()] {
            let mut bulk = PostingList::new();
            bulk.extend_from_increasing(&values[..split]);
            bulk.extend_from_increasing(&values[split..]);
            let mut pushed = PostingList::new();
            for &v in &values {
                pushed.push(v);
            }
            assert_eq!(bulk, pushed, "split={split}");
        }
    }

    #[test]
    fn serde_roundtrip_preserves_values() {
        let values: Vec<u32> = (0..300).map(|i| i * 7 + 2).collect();
        let mut list = PostingList::new();
        list.extend_from_increasing(&values);
        let json = serde_json::to_string(&list).expect("serialize");
        let back: PostingList = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, list);
        assert_eq!(back.iter().collect::<Vec<u32>>(), values);
    }
}
