//! Page posts and fan engagement — the economics behind the study.
//!
//! The paper's motivation is that a like is worth $3.60–$214.81 *because it
//! promises future engagement*: fans see the page's posts and react. The
//! press reports it cites (\[7\] "Who 'likes' my Virtual Bagels?", \[20\]
//! "Facebook Fraud") showed the collapse: pages stuffed with bought likes
//! post into a void, and feed algorithms then throttle their organic reach
//! further. This module makes that observable in-world: pages publish
//! posts, a fraction of fans see each one, and reaction propensity depends
//! on who the fan really is.

use crate::account::ActorClass;
use crate::world::OsnWorld;
use likelab_graph::PageId;
use likelab_sim::Rng;
use serde::{Deserialize, Serialize};

/// Engagement propensities per actor class.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EngagementModel {
    /// Fraction of fans an individual post reaches (Facebook's organic
    /// reach hovered around 16% in the study's era, and fell from there).
    pub reach_fraction: f64,
    /// Reaction probability per seen post, for a genuinely interested
    /// organic fan.
    pub organic_react: f64,
    /// ... for a click-prone user (they liked for the click, not the page).
    pub click_prone_react: f64,
    /// ... for a bot account (the job ended at the like).
    pub bot_react: f64,
    /// ... for a stealth sybil (minimal camouflage activity).
    pub stealth_react: f64,
}

impl Default for EngagementModel {
    fn default() -> Self {
        EngagementModel {
            reach_fraction: 0.16,
            organic_react: 0.05,
            click_prone_react: 0.004,
            bot_react: 0.0,
            stealth_react: 0.002,
        }
    }
}

impl EngagementModel {
    /// Reaction probability for one actor class.
    pub fn react_prob(&self, class: ActorClass) -> f64 {
        match class {
            ActorClass::Organic => self.organic_react,
            ActorClass::ClickProne => self.click_prone_react,
            ActorClass::Bot(_) => self.bot_react,
            ActorClass::StealthSybil(_) => self.stealth_react,
        }
    }
}

/// The outcome of a posting campaign on one page.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EngagementReport {
    /// Posts published.
    pub posts: usize,
    /// Current fan count (visible likers) when the campaign ran.
    pub fans: usize,
    /// Fan-post impressions delivered.
    pub impressions: usize,
    /// Reactions received (likes/comments/shares on posts).
    pub reactions: usize,
}

impl EngagementReport {
    /// Reactions per post — what the page admin stares at in despair.
    pub fn reactions_per_post(&self) -> f64 {
        if self.posts == 0 {
            0.0
        } else {
            self.reactions as f64 / self.posts as f64
        }
    }

    /// Reactions per delivered impression.
    pub fn engagement_rate(&self) -> f64 {
        if self.impressions == 0 {
            0.0
        } else {
            self.reactions as f64 / self.impressions as f64
        }
    }
}

/// Publish `posts` posts on `page` and simulate fan engagement.
///
/// Each post reaches a `reach_fraction` sample of the page's current
/// visible fans; each reached fan reacts with their class propensity.
pub fn simulate_engagement(
    world: &OsnWorld,
    page: PageId,
    posts: usize,
    model: &EngagementModel,
    rng: &mut Rng,
) -> EngagementReport {
    let fans = world.visible_likers(page);
    let mut report = EngagementReport {
        posts,
        fans: fans.len(),
        ..EngagementReport::default()
    };
    if fans.is_empty() {
        return report;
    }
    let per_post = ((fans.len() as f64) * model.reach_fraction.clamp(0.0, 1.0)).round() as usize;
    for _ in 0..posts {
        let reached = rng.sample_without_replacement(&fans, per_post);
        report.impressions += reached.len();
        for fan in reached {
            let p = model.react_prob(world.account(fan).class);
            if rng.chance(p) {
                report.reactions += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::PrivacySettings;
    use crate::demographics::{Country, Gender, Profile};
    use crate::page::PageCategory;
    use likelab_graph::UserId;
    use likelab_sim::SimTime;

    fn world_with_fans(classes: &[(ActorClass, usize)]) -> (OsnWorld, PageId) {
        let mut w = OsnWorld::new();
        let p = w.create_page("p", "", None, PageCategory::Background, SimTime::EPOCH);
        for (class, n) in classes {
            for _ in 0..*n {
                let u = w.create_account(
                    Profile {
                        gender: Gender::Female,
                        age: 30,
                        country: Country::Uk,
                        home_region: 0,
                    },
                    *class,
                    PrivacySettings {
                        friend_list_public: true,
                        likes_public: true,
                        searchable: true,
                    },
                    SimTime::EPOCH,
                );
                w.record_like(u, p, SimTime::at_day(1));
            }
        }
        (w, p)
    }

    #[test]
    fn organic_fans_engage_bots_do_not() {
        let model = EngagementModel::default();
        let mut rng = Rng::seed_from_u64(1);
        let (organic_world, p1) = world_with_fans(&[(ActorClass::Organic, 1_000)]);
        let organic = simulate_engagement(&organic_world, p1, 30, &model, &mut rng);
        let (bot_world, p2) = world_with_fans(&[(ActorClass::Bot(1), 1_000)]);
        let bots = simulate_engagement(&bot_world, p2, 30, &model, &mut rng);
        assert_eq!(organic.fans, 1_000);
        assert!(
            organic.reactions > 150,
            "organic reactions {}",
            organic.reactions
        );
        assert_eq!(bots.reactions, 0, "a bot audience is a void");
        assert!(organic.engagement_rate() > 0.03);
        assert_eq!(bots.engagement_rate(), 0.0);
    }

    #[test]
    fn click_prone_fans_barely_engage() {
        // The paper's subtle point: even *legitimate ad* likes are hollow
        // when the clickers aren't genuinely interested.
        let model = EngagementModel::default();
        let mut rng = Rng::seed_from_u64(2);
        let (w, p) = world_with_fans(&[(ActorClass::ClickProne, 1_000)]);
        let r = simulate_engagement(&w, p, 30, &model, &mut rng);
        assert!(
            r.engagement_rate() < model.organic_react / 5.0,
            "click-prone rate {}",
            r.engagement_rate()
        );
        assert!(r.reactions > 0, "not literally zero, just hollow");
    }

    #[test]
    fn terminated_fans_stop_counting() {
        let model = EngagementModel::default();
        let mut rng = Rng::seed_from_u64(3);
        let (mut w, p) = world_with_fans(&[(ActorClass::Organic, 100)]);
        for i in 0..50 {
            w.terminate_account(UserId(i), SimTime::at_day(2));
        }
        let r = simulate_engagement(&w, p, 10, &model, &mut rng);
        assert_eq!(r.fans, 50);
    }

    #[test]
    fn reach_fraction_bounds_impressions() {
        let model = EngagementModel {
            reach_fraction: 0.1,
            ..EngagementModel::default()
        };
        let mut rng = Rng::seed_from_u64(4);
        let (w, p) = world_with_fans(&[(ActorClass::Organic, 200)]);
        let r = simulate_engagement(&w, p, 5, &model, &mut rng);
        assert_eq!(r.impressions, 5 * 20);
    }

    #[test]
    fn empty_page_reports_zero() {
        let w = {
            let mut w = OsnWorld::new();
            w.create_page("p", "", None, PageCategory::Background, SimTime::EPOCH);
            w
        };
        let mut rng = Rng::seed_from_u64(5);
        let r = simulate_engagement(&w, PageId(0), 10, &EngagementModel::default(), &mut rng);
        assert_eq!(
            r,
            EngagementReport {
                posts: 10,
                ..Default::default()
            }
        );
        assert_eq!(r.reactions_per_post(), 0.0);
    }
}
