//! The page-admin reports tool.
//!
//! Facebook gives page administrators aggregated statistics about the users
//! who liked their page — gender, age, country — computed from *both public
//! and private* attributes (the paper leaned on this to sidestep profile
//! privacy, per their footnote: current location comes from the IP address).
//! The same tool publishes global-population statistics, which Table 2's
//! last row quotes. This module is that tool.

use crate::demographics::{AgeBracket, Gender, GeoBucket};
use crate::world::OsnWorld;
use likelab_graph::{PageId, UserId};
use likelab_sim::parallel::{parallel_map, Exec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Users per aggregation chunk in the `*_with` parallel paths. Large enough
/// that per-chunk report overhead vanishes, small enough that a
/// million-account world spreads over every worker.
const CHUNK_USERS: usize = 65_536;

/// Aggregated audience statistics, as the reports tool exposes them.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AudienceReport {
    /// Total profiles aggregated.
    pub total: usize,
    /// Number of female profiles.
    pub female: usize,
    /// Number of male profiles.
    pub male: usize,
    /// Counts per age bracket (Table 2 order).
    pub age_counts: [usize; 6],
    /// Counts per Figure 1 geo bucket, keyed by display name for stable
    /// serialization.
    pub country_counts: BTreeMap<String, usize>,
}

impl AudienceReport {
    /// Aggregate the given users' true attributes.
    pub fn over_users(world: &OsnWorld, users: &[UserId]) -> Self {
        Self::tally(world, users.iter().copied())
    }

    /// Accumulate one report over a stream of ids (reads only the profile
    /// column of the account store).
    ///
    /// Geo counts accumulate in a dense [`GeoBucket`]-indexed array — the
    /// per-user `String` key allocation and tree probe of the naive
    /// `BTreeMap::entry` loop dominated the whole report at scale. The map
    /// is materialized once at the end, inserting only buckets that were
    /// actually seen, exactly the key set the entry-per-user loop produced.
    fn tally(world: &OsnWorld, users: impl Iterator<Item = UserId>) -> Self {
        let mut r = AudienceReport::default();
        let mut geo = [0usize; 6];
        for u in users {
            let p = world.profile(u);
            r.total += 1;
            match p.gender {
                Gender::Female => r.female += 1,
                Gender::Male => r.male += 1,
            }
            r.age_counts[p.age_bracket().index()] += 1;
            geo[p.country.geo_bucket().index()] += 1;
        }
        for (b, &count) in GeoBucket::ALL.iter().zip(geo.iter()) {
            if count > 0 {
                r.country_counts.insert(b.to_string(), count);
            }
        }
        r
    }

    /// Fold another report's counts into this one. Every field is a sum, so
    /// the merged result is independent of merge order — which is what makes
    /// the chunked parallel paths deterministic for any worker count.
    fn merge(&mut self, other: AudienceReport) {
        self.total += other.total;
        self.female += other.female;
        self.male += other.male;
        for (a, b) in self.age_counts.iter_mut().zip(other.age_counts) {
            *a += b;
        }
        for (k, v) in other.country_counts {
            *self.country_counts.entry(k).or_insert(0) += v;
        }
    }

    /// [`over_users`][Self::over_users], aggregated chunk-by-chunk through
    /// `exec`. Identical output for every `exec` (partial reports are summed
    /// in chunk order, and sums commute anyway).
    pub fn over_users_with(world: &OsnWorld, users: &[UserId], exec: Exec) -> Self {
        Self::over_users_chunked(world, users, exec, CHUNK_USERS)
    }

    fn over_users_chunked(world: &OsnWorld, users: &[UserId], exec: Exec, chunk: usize) -> Self {
        if users.len() <= chunk {
            return Self::over_users(world, users);
        }
        let chunks: Vec<&[UserId]> = users.chunks(chunk).collect();
        let partials = parallel_map(exec, &chunks, |_, c| Self::over_users(world, c));
        let mut r = AudienceReport::default();
        for partial in partials {
            r.merge(partial);
        }
        r
    }

    /// The report a page admin sees: aggregated over every account that ever
    /// liked the page (the platform aggregates what it knows, not what is
    /// public).
    pub fn for_page(world: &OsnWorld, page: PageId) -> Self {
        // Stream straight off the packed posting list, reading only the
        // ledger's user column — no liker Vec, no record assembly.
        Self::tally(world, world.likes().page_users(page))
    }

    /// The platform-wide report (Table 2's "Facebook" row equivalent).
    pub fn global(world: &OsnWorld) -> Self {
        Self::global_with(world, Exec::Sequential)
    }

    /// [`global`][Self::global] aggregated through `exec`, chunking by id
    /// range so no global `Vec<UserId>` is ever materialized. Identical
    /// output for every `exec`.
    pub fn global_with(world: &OsnWorld, exec: Exec) -> Self {
        Self::global_chunked(world, exec, CHUNK_USERS)
    }

    fn global_chunked(world: &OsnWorld, exec: Exec, chunk: usize) -> Self {
        let n = world.account_count();
        let ranges: Vec<(u32, u32)> = (0..n)
            .step_by(chunk)
            .map(|lo| (lo as u32, (lo + chunk).min(n) as u32))
            .collect();
        let partials = parallel_map(exec, &ranges, |_, &(lo, hi)| {
            Self::tally(world, (lo..hi).map(UserId))
        });
        let mut r = AudienceReport::default();
        for partial in partials {
            r.merge(partial);
        }
        r
    }

    /// Female fraction, 0 when empty.
    pub fn female_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.female as f64 / self.total as f64
        }
    }

    /// Age distribution as fractions over the six brackets.
    pub fn age_distribution(&self) -> [f64; 6] {
        let mut out = [0.0; 6];
        if self.total == 0 {
            return out;
        }
        for (i, c) in self.age_counts.iter().enumerate() {
            out[i] = *c as f64 / self.total as f64;
        }
        out
    }

    /// Geo-bucket shares as fractions, in [`GeoBucket::ALL`] order.
    pub fn geo_distribution(&self) -> [f64; 6] {
        let mut out = [0.0; 6];
        if self.total == 0 {
            return out;
        }
        for (i, b) in GeoBucket::ALL.iter().enumerate() {
            out[i] = self
                .country_counts
                .get(&b.to_string())
                .copied()
                .unwrap_or(0) as f64
                / self.total as f64;
        }
        out
    }

    /// Share of one age bracket.
    pub fn age_share(&self, bracket: AgeBracket) -> f64 {
        self.age_distribution()[bracket.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{ActorClass, PrivacySettings};
    use crate::demographics::{Country, Profile};
    use crate::page::PageCategory;
    use likelab_sim::SimTime;

    fn add_user(world: &mut OsnWorld, gender: Gender, age: u8, country: Country) -> UserId {
        world.create_account(
            Profile {
                gender,
                age,
                country,
                home_region: 0,
            },
            ActorClass::Organic,
            PrivacySettings {
                friend_list_public: false, // reports ignore privacy
                likes_public: false,
                searchable: false,
            },
            SimTime::EPOCH,
        )
    }

    #[test]
    fn page_report_aggregates_regardless_of_privacy() {
        let mut w = OsnWorld::new();
        let a = add_user(&mut w, Gender::Female, 16, Country::Usa);
        let b = add_user(&mut w, Gender::Male, 30, Country::India);
        let c = add_user(&mut w, Gender::Male, 60, Country::Brazil);
        let p = w.create_page("h", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        for (i, u) in [a, b, c].into_iter().enumerate() {
            w.record_like(u, p, SimTime::at_day(i as u64));
        }
        let r = AudienceReport::for_page(&w, p);
        assert_eq!(r.total, 3);
        assert_eq!(r.female, 1);
        assert_eq!(r.male, 2);
        assert_eq!(r.age_counts, [1, 0, 1, 0, 0, 1]);
        assert_eq!(r.country_counts["USA"], 1);
        assert_eq!(r.country_counts["India"], 1);
        assert_eq!(r.country_counts["Other"], 1);
        assert!((r.female_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn geo_distribution_is_in_legend_order() {
        let mut w = OsnWorld::new();
        let a = add_user(&mut w, Gender::Male, 20, Country::Turkey);
        let b = add_user(&mut w, Gender::Male, 20, Country::Turkey);
        let c = add_user(&mut w, Gender::Male, 20, Country::France);
        let p = w.create_page("h", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        for u in [a, b, c] {
            w.record_like(u, p, SimTime::EPOCH);
        }
        let geo = AudienceReport::for_page(&w, p).geo_distribution();
        // [USA, India, Egypt, Turkey, France, Other]
        assert!((geo[3] - 2.0 / 3.0).abs() < 1e-12);
        assert!((geo[4] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(geo[0], 0.0);
    }

    #[test]
    fn report_includes_terminated_likers() {
        // The platform's own aggregation sees everything it ever recorded.
        let mut w = OsnWorld::new();
        let a = add_user(&mut w, Gender::Female, 20, Country::Usa);
        let p = w.create_page("h", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        w.record_like(a, p, SimTime::EPOCH);
        w.terminate_account(a, SimTime::at_day(1));
        assert_eq!(AudienceReport::for_page(&w, p).total, 1);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let w = OsnWorld::new();
        let r = AudienceReport::over_users(&w, &[]);
        assert_eq!(r.total, 0);
        assert_eq!(r.female_fraction(), 0.0);
        assert_eq!(r.age_distribution(), [0.0; 6]);
        assert_eq!(r.geo_distribution(), [0.0; 6]);
    }

    #[test]
    fn global_report_covers_all_accounts() {
        let mut w = OsnWorld::new();
        add_user(&mut w, Gender::Female, 20, Country::Usa);
        add_user(&mut w, Gender::Male, 40, Country::India);
        let g = AudienceReport::global(&w);
        assert_eq!(g.total, 2);
    }

    #[test]
    fn parallel_aggregation_matches_sequential() {
        let mut w = OsnWorld::new();
        let mut users = Vec::new();
        for i in 0..500u32 {
            let gender = if i % 3 == 0 {
                Gender::Female
            } else {
                Gender::Male
            };
            let country = Country::ALL[i as usize % Country::ALL.len()];
            users.push(add_user(&mut w, gender, (13 + i % 70) as u8, country));
        }
        let sequential = AudienceReport::over_users(&w, &users);
        // A chunk size far below the user count forces the multi-chunk
        // partial-merge path that the public `*_with` wrappers take at scale.
        for workers in [1usize, 2, 7] {
            let exec = Exec::workers(workers);
            assert_eq!(
                AudienceReport::over_users_chunked(&w, &users, exec, 64),
                sequential,
                "over_users chunked workers={workers}"
            );
            assert_eq!(
                AudienceReport::global_chunked(&w, exec, 64),
                sequential,
                "global chunked workers={workers}"
            );
            assert_eq!(
                AudienceReport::over_users_with(&w, &users, exec),
                sequential
            );
            assert_eq!(AudienceReport::global_with(&w, exec), sequential);
        }
    }
}
