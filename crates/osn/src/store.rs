//! Struct-of-arrays account storage with an interned demographics table.
//!
//! At million-account scale the natural `Vec<Account>` layout wastes memory
//! (every account repeats a full [`Profile`]) and drags cold fields through
//! the cache on every hot-path scan (audience aggregation touches only
//! demographics; the fraud sweep touches only class and status). This store
//! keeps one dense column per field and deduplicates profiles through an
//! intern table: the value space of [`Profile`] is tiny, so millions of
//! accounts share a few thousand distinct entries and the per-account
//! demographic cost drops to a `u32` handle.
//!
//! [`Account`] remains the public view type — [`AccountStore::get`]
//! assembles one by value on demand, so call sites read exactly as they did
//! with the array-of-structs layout.

use crate::account::{Account, AccountStatus, ActorClass, PrivacySettings};
use crate::demographics::Profile;
use likelab_graph::UserId;
use likelab_sim::SimTime;
use std::collections::HashMap;

/// Columnar account storage. See the module docs for the layout rationale.
#[derive(Clone, Debug, Default)]
pub struct AccountStore {
    /// Handle into `profiles`, one per account.
    profile_ids: Vec<u32>,
    created_at: Vec<SimTime>,
    class: Vec<ActorClass>,
    status: Vec<AccountStatus>,
    /// Packed [`PrivacySettings::to_bits`] per account.
    privacy: Vec<u8>,
    off_network_friends: Vec<u32>,
    /// The interned demographics table, in first-seen order.
    profiles: Vec<Profile>,
    /// Profile → handle. Only used during writes; reads go through
    /// `profiles`, so lookup-map iteration order can never leak into output.
    intern: HashMap<Profile, u32>,
}

impl AccountStore {
    /// An empty store.
    pub fn new() -> Self {
        AccountStore::default()
    }

    /// Number of accounts (including terminated).
    pub fn len(&self) -> usize {
        self.profile_ids.len()
    }

    /// True when no account was created yet.
    pub fn is_empty(&self) -> bool {
        self.profile_ids.is_empty()
    }

    /// Append an account, returning its dense id.
    pub fn push(
        &mut self,
        profile: Profile,
        class: ActorClass,
        privacy: PrivacySettings,
        created_at: SimTime,
    ) -> UserId {
        let id = UserId(self.profile_ids.len() as u32);
        let next = self.profiles.len() as u32;
        let pid = *self.intern.entry(profile).or_insert(next);
        if pid == next {
            self.profiles.push(profile);
        }
        self.profile_ids.push(pid);
        self.created_at.push(created_at);
        self.class.push(class);
        self.status.push(AccountStatus::Active);
        self.privacy.push(privacy.to_bits());
        self.off_network_friends.push(0);
        id
    }

    /// Assemble the full account view by value.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn get(&self, id: UserId) -> Account {
        let i = id.idx();
        Account {
            id,
            profile: self.profiles[self.profile_ids[i] as usize],
            created_at: self.created_at[i],
            class: self.class[i],
            status: self.status[i],
            privacy: PrivacySettings::from_bits(self.privacy[i]),
            off_network_friends: self.off_network_friends[i],
        }
    }

    /// The demographic profile column, without assembling a full account —
    /// the audience-aggregation hot path.
    pub fn profile(&self, id: UserId) -> Profile {
        self.profiles[self.profile_ids[id.idx()] as usize]
    }

    /// The creation-time column.
    pub fn created_at(&self, id: UserId) -> SimTime {
        self.created_at[id.idx()]
    }

    /// The raw status column. Dense scans (the fraud sweep's candidate
    /// filter, activity tallies) walk this branch-predictably instead of
    /// assembling an [`Account`] per row.
    pub fn statuses(&self) -> &[AccountStatus] {
        &self.status
    }

    /// The interned profile-handle column, parallel to account ids. Columnar
    /// aggregations histogram over these `u32`s (the value space is tiny —
    /// thousands of distinct profiles for millions of accounts) and expand
    /// through [`interned_profiles`][Self::interned_profiles] once at the
    /// end instead of touching the demographics table per row.
    pub fn profile_handles(&self) -> &[u32] {
        &self.profile_ids
    }

    /// The interned demographics table, indexed by profile handle.
    pub fn interned_profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// The ground-truth class column.
    pub fn class(&self, id: UserId) -> ActorClass {
        self.class[id.idx()]
    }

    /// The status column.
    pub fn status(&self, id: UserId) -> AccountStatus {
        self.status[id.idx()]
    }

    /// True while the account is active.
    pub fn is_active(&self, id: UserId) -> bool {
        self.status[id.idx()].is_active()
    }

    /// Set the off-network friend count.
    pub fn set_off_network_friends(&mut self, id: UserId, n: u32) {
        self.off_network_friends[id.idx()] = n;
    }

    /// The off-network friend count.
    pub fn off_network_friends(&self, id: UserId) -> u32 {
        // lint:allow(panic-reachable-from-serve): ids come from this store's own registry
        self.off_network_friends[id.idx()]
    }

    /// Terminate an account (idempotent; the first termination time wins).
    /// Returns true when the account was active.
    pub fn terminate(&mut self, id: UserId, at: SimTime) -> bool {
        if self.status[id.idx()].is_active() {
            self.status[id.idx()] = AccountStatus::Terminated(at);
            true
        } else {
            false
        }
    }

    /// Reinstate a terminated account (the appeal path: platforms do give
    /// accounts back, and their likes resurface). Returns true when the
    /// account was terminated.
    pub fn reinstate(&mut self, id: UserId) -> bool {
        if self.status[id.idx()].is_active() {
            false
        } else {
            self.status[id.idx()] = AccountStatus::Active;
            true
        }
    }

    /// Number of distinct interned profiles (a compactness metric for the
    /// scale bench and tests).
    pub fn distinct_profiles(&self) -> usize {
        self.profiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demographics::{Country, Gender};

    fn profile(age: u8) -> Profile {
        Profile {
            gender: Gender::Female,
            age,
            country: Country::Usa,
            home_region: 1,
        }
    }

    fn privacy() -> PrivacySettings {
        PrivacySettings {
            friend_list_public: true,
            likes_public: false,
            searchable: true,
        }
    }

    #[test]
    fn round_trips_every_field() {
        let mut s = AccountStore::new();
        let at = SimTime::at_day(3);
        let id = s.push(profile(30), ActorClass::Bot(7), privacy(), at);
        let a = s.get(id);
        assert_eq!(a.id, id);
        assert_eq!(a.profile, profile(30));
        assert_eq!(a.created_at, at);
        assert_eq!(a.class, ActorClass::Bot(7));
        assert_eq!(a.status, AccountStatus::Active);
        assert_eq!(a.privacy, privacy());
        assert_eq!(a.off_network_friends, 0);
    }

    #[test]
    fn profiles_are_interned() {
        let mut s = AccountStore::new();
        for _ in 0..100 {
            s.push(profile(30), ActorClass::Organic, privacy(), SimTime::EPOCH);
        }
        for age in [20, 25] {
            s.push(profile(age), ActorClass::Organic, privacy(), SimTime::EPOCH);
        }
        assert_eq!(s.len(), 102);
        assert_eq!(s.distinct_profiles(), 3, "100 duplicates share one entry");
        assert_eq!(s.profile(UserId(0)), profile(30));
        assert_eq!(s.profile(UserId(101)), profile(25));
    }

    #[test]
    fn termination_is_idempotent() {
        let mut s = AccountStore::new();
        let id = s.push(profile(40), ActorClass::Organic, privacy(), SimTime::EPOCH);
        assert!(s.is_active(id));
        assert!(s.terminate(id, SimTime::at_day(5)));
        assert!(!s.terminate(id, SimTime::at_day(9)), "first time wins");
        assert_eq!(s.status(id), AccountStatus::Terminated(SimTime::at_day(5)));
        assert!(!s.is_active(id));
    }

    #[test]
    fn off_network_friends_column() {
        let mut s = AccountStore::new();
        let id = s.push(profile(40), ActorClass::Organic, privacy(), SimTime::EPOCH);
        assert_eq!(s.off_network_friends(id), 0);
        s.set_off_network_friends(id, 77);
        assert_eq!(s.off_network_friends(id), 77);
        assert_eq!(s.get(id).off_network_friends, 77);
    }
}
