//! The platform state: accounts, pages, friendships, likes — one world.
//!
//! `OsnWorld` is the single mutable state every other subsystem operates on.
//! Farms create accounts in it, the ad engine records likes into it, the
//! crawler reads privacy-filtered views of it, anti-fraud terminates
//! accounts in it.
//!
//! Accounts live in a columnar [`AccountStore`] (struct-of-arrays with an
//! interned demographics table); [`OsnWorld::account`] assembles the full
//! [`Account`] view by value, and hot paths that need a single column go
//! through [`OsnWorld::profile`] / the store accessors directly.

use crate::account::{Account, ActorClass, PrivacySettings};
use crate::demographics::Profile;
use crate::likes::{LikeColumns, LikeLedger};
use crate::log::{Recorder, WorldEvent};
use crate::page::{Page, PageCategory};
use crate::store::AccountStore;
use likelab_graph::{FriendGraph, PageId, UserId};
use likelab_sim::parallel::Exec;
use likelab_sim::SimTime;

/// The simulated platform.
#[derive(Clone, Debug, Default)]
pub struct OsnWorld {
    accounts: AccountStore,
    pages: Vec<Page>,
    friends: FriendGraph,
    ledger: LikeLedger,
    recorder: Recorder,
}

impl OsnWorld {
    /// An empty world.
    pub fn new() -> Self {
        OsnWorld::default()
    }

    // ----- event recording ----------------------------------------------

    /// Turn mutation recording on or off. While on, every accepted
    /// mutation buffers one [`WorldEvent`]; drain the buffer with
    /// [`drain_events`][Self::drain_events]. Off by default.
    pub fn set_recording(&mut self, on: bool) {
        self.recorder.set_enabled(on);
    }

    /// Whether mutation recording is currently on.
    pub fn recording(&self) -> bool {
        self.recorder.enabled()
    }

    /// Number of buffered (not yet drained) events.
    pub fn pending_events(&self) -> usize {
        self.recorder.len()
    }

    /// Take the buffered events, leaving the buffer empty.
    pub fn drain_events(&mut self) -> Vec<WorldEvent> {
        self.recorder.drain()
    }

    /// Apply a replayed event to this world. Applies the same validation
    /// the original mutation did (so rejected duplicates stay rejected) and
    /// never records, even when recording is on — replaying a log must not
    /// re-log it.
    pub fn apply_event(&mut self, ev: &WorldEvent) {
        let was_recording = self.recorder.enabled();
        self.recorder.set_enabled(false);
        match ev {
            WorldEvent::AccountCreated {
                profile,
                class,
                privacy,
                at,
            } => {
                self.create_account(*profile, *class, *privacy, *at);
            }
            WorldEvent::PageCreated {
                name,
                description,
                owner,
                category,
                at,
            } => {
                self.create_page(name.clone(), description.clone(), *owner, *category, *at);
            }
            WorldEvent::Friendship { a, b } => {
                self.add_friendship(*a, *b);
            }
            WorldEvent::FriendshipBatch { edges } => {
                for &(a, b) in edges {
                    self.friends.add_edge(a, b);
                }
            }
            WorldEvent::OffNetworkFriends { user, n } => {
                self.set_off_network_friends(*user, *n);
            }
            WorldEvent::Like { user, page, at } => {
                self.record_like(*user, *page, *at);
            }
            WorldEvent::LikeBatch { likes } => {
                self.ingest_likes(likes, Exec::Sequential);
            }
            WorldEvent::Terminated { user, at } => {
                self.terminate_account(*user, *at);
            }
            WorldEvent::Reinstated { user } => {
                self.reinstate_account(*user);
            }
        }
        self.recorder.set_enabled(was_recording);
    }

    // ----- accounts -----------------------------------------------------

    /// Create an account and return its id.
    pub fn create_account(
        &mut self,
        profile: Profile,
        class: ActorClass,
        privacy: PrivacySettings,
        created_at: SimTime,
    ) -> UserId {
        let id = self.accounts.push(profile, class, privacy, created_at);
        self.friends.ensure_nodes(self.accounts.len());
        self.ledger.ensure_users(self.accounts.len());
        self.recorder.push_with(|| WorldEvent::AccountCreated {
            profile,
            class,
            privacy,
            at: created_at,
        });
        id
    }

    /// The account record, assembled by value from the columnar store.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn account(&self, id: UserId) -> Account {
        self.accounts.get(id)
    }

    /// The demographic profile alone — the audience-aggregation hot path
    /// (skips assembling the full [`Account`] view).
    pub fn profile(&self, id: UserId) -> Profile {
        self.accounts.profile(id)
    }

    /// True while the account is active (status column only).
    pub fn is_active(&self, id: UserId) -> bool {
        self.accounts.is_active(id)
    }

    /// Creation time alone (columnar; skips assembling the full account).
    pub fn created_at(&self, id: UserId) -> SimTime {
        self.accounts.created_at(id)
    }

    /// The columnar account store (read-only), for aggregations that want
    /// direct column access.
    pub fn account_store(&self) -> &AccountStore {
        &self.accounts
    }

    /// Number of accounts ever created (including terminated).
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// All account ids.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.accounts.len() as u32).map(UserId)
    }

    /// Set the count of friends beyond the simulated window (see
    /// [`Account::off_network_friends`]).
    pub fn set_off_network_friends(&mut self, id: UserId, n: u32) {
        self.accounts.set_off_network_friends(id, n);
        self.recorder
            .push_with(|| WorldEvent::OffNetworkFriends { user: id, n });
    }

    /// Total friend count as the profile reports it: in-world degree plus
    /// off-network friends.
    pub fn total_friend_count(&self, id: UserId) -> usize {
        self.friends.degree(id) + self.accounts.off_network_friends(id) as usize
    }

    /// Terminate an account (idempotent; the first termination time wins).
    /// Returns true when the account was active.
    pub fn terminate_account(&mut self, id: UserId, at: SimTime) -> bool {
        let accepted = self.accounts.terminate(id, at);
        if accepted {
            self.recorder
                .push_with(|| WorldEvent::Terminated { user: id, at });
        }
        accepted
    }

    /// Reinstate a terminated account (the appeal path); its likes become
    /// visible again. Returns true when the account was terminated.
    pub fn reinstate_account(&mut self, id: UserId) -> bool {
        let accepted = self.accounts.reinstate(id);
        if accepted {
            self.recorder
                .push_with(|| WorldEvent::Reinstated { user: id });
        }
        accepted
    }

    // ----- pages ---------------------------------------------------------

    /// Create a page and return its id.
    pub fn create_page(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        owner: Option<UserId>,
        category: PageCategory,
        created_at: SimTime,
    ) -> PageId {
        let id = PageId(self.pages.len() as u32);
        let name = name.into();
        let description = description.into();
        self.recorder.push_with(|| WorldEvent::PageCreated {
            name: name.clone(),
            description: description.clone(),
            owner,
            category,
            at: created_at,
        });
        self.pages.push(Page {
            id,
            name,
            description,
            owner,
            created_at,
            category,
        });
        self.ledger.ensure_pages(self.pages.len());
        id
    }

    /// The page record.
    pub fn page(&self, id: PageId) -> &Page {
        &self.pages[id.idx()]
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// All page ids.
    pub fn page_ids(&self) -> impl Iterator<Item = PageId> + '_ {
        (0..self.pages.len() as u32).map(PageId)
    }

    // ----- friendships ---------------------------------------------------

    /// Befriend two accounts. Returns true when the edge was new.
    pub fn add_friendship(&mut self, a: UserId, b: UserId) -> bool {
        let added = self.friends.add_edge(a, b);
        if added {
            self.recorder.push_with(|| WorldEvent::Friendship { a, b });
        }
        added
    }

    /// Run a bulk friendship generator against the graph and journal the
    /// edges it reports as one [`WorldEvent::FriendshipBatch`]. The closure
    /// must return exactly the edges it added, in insertion order — the
    /// graph generators (`chung_lu`, `pairs_and_triplets`) do.
    ///
    /// This is the sanctioned path for bulk wiring; mutating the graph
    /// behind the world's back would leave holes in the event log (the
    /// `log-bypass` lint flags that).
    pub fn generate_friendships<F>(&mut self, f: F) -> Vec<(UserId, UserId)>
    where
        F: FnOnce(&mut FriendGraph) -> Vec<(UserId, UserId)>,
    {
        let edges = f(&mut self.friends);
        if !edges.is_empty() {
            self.recorder.push_with(|| WorldEvent::FriendshipBatch {
                edges: edges.clone(),
            });
        }
        edges
    }

    /// The friendship graph (read-only).
    pub fn friends(&self) -> &FriendGraph {
        &self.friends
    }

    /// Mutable friendship graph, for bulk generators.
    ///
    /// Prefer [`generate_friendships`][Self::generate_friendships]: edges
    /// added through this escape hatch are invisible to the event log.
    pub fn friends_mut(&mut self) -> &mut FriendGraph {
        &mut self.friends
    }

    // ----- likes -----------------------------------------------------------

    /// Record a like. Likes by terminated accounts are rejected.
    /// Returns true when the like was new and accepted.
    pub fn record_like(&mut self, user: UserId, page: PageId, at: SimTime) -> bool {
        if !self.accounts.is_active(user) {
            return false;
        }
        let accepted = self.ledger.record(user, page, at);
        if accepted {
            self.recorder
                .push_with(|| WorldEvent::Like { user, page, at });
        }
        accepted
    }

    /// Bulk-record likes through the ledger's sharded batch path (see
    /// [`LikeLedger::ingest_batch`]). Likes by terminated accounts are
    /// rejected, duplicates ignored; returns how many were new and accepted.
    /// Byte-identical outcome for every `exec`, and identical to calling
    /// [`record_like`][Self::record_like] per item in order.
    pub fn ingest_likes(&mut self, items: &[(UserId, PageId, SimTime)], exec: Exec) -> usize {
        self.ingest_like_columns(&LikeColumns::from_rows(items), exec)
    }

    /// Columnar twin of [`ingest_likes`][Self::ingest_likes]: the batch
    /// arrives as [`LikeColumns`] and flows into the ledger's SoA storage
    /// without assembling row tuples (synthesis and the coalesced event
    /// loop call this directly). Journals the identical
    /// [`WorldEvent::LikeBatch`] row form, so logs do not depend on which
    /// entry point produced them.
    pub fn ingest_like_columns(&mut self, batch: &LikeColumns, exec: Exec) -> usize {
        // The *input* batch is journaled verbatim; replay re-applies the
        // same active-account filter against identical state.
        if !batch.is_empty() {
            self.recorder.push_with(|| WorldEvent::LikeBatch {
                likes: batch.rows().collect(),
            });
        }
        if batch.users.iter().all(|&u| self.accounts.is_active(u)) {
            // Synthesis-time fast path: nobody is terminated yet, ingest the
            // batch without copying it.
            self.ledger.ingest_columns(batch, exec)
        } else {
            let mut alive = LikeColumns::with_capacity(batch.len());
            for (user, page, at) in batch.rows() {
                if self.accounts.is_active(user) {
                    alive.push(user, page, at);
                }
            }
            self.ledger.ingest_columns(&alive, exec)
        }
    }

    /// The like ledger (read-only).
    pub fn likes(&self) -> &LikeLedger {
        &self.ledger
    }

    /// Current *visible* likers of a page: active accounts only, in like
    /// order. Terminated accounts' likes disappear from public view, which
    /// is how the paper could count terminated likers a month later.
    pub fn visible_likers(&self, page: PageId) -> Vec<UserId> {
        // User column only — the poll path runs this per snapshot.
        self.ledger
            .page_users(page)
            .filter(|&u| self.accounts.is_active(u))
            .collect()
    }

    /// Every account that ever liked `page`, with like times, regardless of
    /// current status. This is the *platform-side* record (admin reports are
    /// computed from it).
    pub fn all_likers(&self, page: PageId) -> Vec<(UserId, SimTime)> {
        self.ledger.page_user_times(page).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::AccountStatus;
    use crate::demographics::{Country, Gender};

    fn profile() -> Profile {
        Profile {
            gender: Gender::Male,
            age: 22,
            country: Country::India,
            home_region: 0,
        }
    }

    fn privacy() -> PrivacySettings {
        PrivacySettings {
            friend_list_public: true,
            likes_public: true,
            searchable: true,
        }
    }

    fn world_with(n: usize) -> OsnWorld {
        let mut w = OsnWorld::new();
        for _ in 0..n {
            w.create_account(profile(), ActorClass::Organic, privacy(), SimTime::EPOCH);
        }
        w
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let w = world_with(3);
        assert_eq!(w.account_count(), 3);
        for (i, id) in w.user_ids().enumerate() {
            assert_eq!(id, UserId(i as u32));
            assert_eq!(w.account(id).id, id);
        }
    }

    #[test]
    fn likes_flow_through_ledger() {
        let mut w = world_with(2);
        let p = w.create_page("x", "", None, PageCategory::Background, SimTime::EPOCH);
        assert!(w.record_like(UserId(0), p, SimTime::at_day(1)));
        assert!(!w.record_like(UserId(0), p, SimTime::at_day(2)), "dup");
        assert_eq!(w.likes().page_like_count(p), 1);
    }

    #[test]
    fn terminated_accounts_cannot_like_and_vanish() {
        let mut w = world_with(3);
        let p = w.create_page("h", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        w.record_like(UserId(0), p, SimTime::at_day(1));
        w.record_like(UserId(1), p, SimTime::at_day(2));
        assert!(w.terminate_account(UserId(0), SimTime::at_day(3)));
        assert!(
            !w.terminate_account(UserId(0), SimTime::at_day(4)),
            "idempotent"
        );
        // New likes rejected.
        assert!(!w.record_like(UserId(0), p, SimTime::at_day(5)));
        // Public view loses the terminated liker; platform record keeps it.
        assert_eq!(w.visible_likers(p), vec![UserId(1)]);
        assert_eq!(w.all_likers(p).len(), 2);
        match w.account(UserId(0)).status {
            AccountStatus::Terminated(t) => assert_eq!(t, SimTime::at_day(3)),
            AccountStatus::Active => unreachable!(),
        }
    }

    #[test]
    fn ingest_rejects_terminated_likers() {
        let mut w = world_with(3);
        let p = w.create_page("h", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        w.terminate_account(UserId(2), SimTime::at_day(1));
        let batch = vec![
            (UserId(0), p, SimTime::at_day(2)),
            (UserId(2), p, SimTime::at_day(2)), // terminated: dropped
            (UserId(1), p, SimTime::at_day(3)),
            (UserId(0), p, SimTime::at_day(4)), // dup: dropped
        ];
        assert_eq!(w.ingest_likes(&batch, Exec::Sequential), 2);
        assert_eq!(w.visible_likers(p), vec![UserId(0), UserId(1)]);
        assert_eq!(w.likes().user_like_count(UserId(2)), 0);
    }

    #[test]
    fn off_network_friends_pad_totals() {
        let mut w = world_with(2);
        w.add_friendship(UserId(0), UserId(1));
        assert_eq!(w.total_friend_count(UserId(0)), 1);
        w.set_off_network_friends(UserId(0), 120);
        assert_eq!(w.total_friend_count(UserId(0)), 121);
        assert_eq!(w.total_friend_count(UserId(1)), 1);
    }

    #[test]
    fn friendships_are_shared_graph() {
        let mut w = world_with(3);
        assert!(w.add_friendship(UserId(0), UserId(2)));
        assert!(!w.add_friendship(UserId(2), UserId(0)));
        assert!(w.friends().has_edge(UserId(0), UserId(2)));
        assert_eq!(w.friends().degree(UserId(1)), 0);
    }

    #[test]
    fn pages_are_dense() {
        let mut w = world_with(1);
        let a = w.create_page(
            "a",
            "d",
            Some(UserId(0)),
            PageCategory::Honeypot,
            SimTime::EPOCH,
        );
        let b = w.create_page("b", "d", None, PageCategory::Background, SimTime::EPOCH);
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        assert!(w.page(a).is_honeypot());
        assert!(!w.page(b).is_honeypot());
        assert_eq!(w.page_ids().count(), 2);
    }

    #[test]
    fn profiles_intern_across_accounts() {
        let w = world_with(50);
        assert_eq!(w.account_store().distinct_profiles(), 1);
        assert_eq!(w.profile(UserId(17)), profile());
    }
}
