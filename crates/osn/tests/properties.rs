//! Property-based tests of the platform substrate's invariants.

use likelab_graph::{PageId, UserId};
use likelab_osn::demographics::{AgeBracket, Blueprint, Country};
use likelab_osn::{
    ActorClass, AudienceReport, Gender, LikeLedger, OsnWorld, PageCategory, PrivacySettings,
    Profile,
};
use likelab_sim::{Rng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Age bracketing is total over the platform's age domain and sampling
    /// within a bracket round-trips.
    #[test]
    fn age_brackets_are_total(age in 13u8..=120, seed in any::<u64>()) {
        let b = AgeBracket::from_age(age);
        let mut rng = Rng::seed_from_u64(seed);
        let sampled = b.sample_age(&mut rng);
        prop_assert_eq!(AgeBracket::from_age(sampled), b);
        prop_assert!(b.index() < 6);
    }

    /// Blueprint sampling always produces profiles in the blueprint's
    /// support.
    #[test]
    fn blueprints_sample_their_support(seed in any::<u64>(), female in 0.0f64..=1.0) {
        let bp = Blueprint {
            female_fraction: female,
            age_weights: [0.0, 1.0, 0.0, 0.0, 1.0, 0.0],
            country_weights: vec![(Country::Turkey, 1.0), (Country::India, 0.0)],
        };
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..32 {
            let p = bp.sample(&mut rng);
            prop_assert_eq!(p.country, Country::Turkey, "zero-weight country never drawn");
            let b = p.age_bracket();
            prop_assert!(b == AgeBracket::A18_24 || b == AgeBracket::A45_54);
        }
    }

    /// The like ledger's two indexes agree with each other and with the
    /// structural graph, whatever the (possibly duplicated, unordered)
    /// record stream.
    #[test]
    fn ledger_indexes_agree(likes in prop::collection::vec((0u32..15, 0u32..15, 0u64..1_000), 0..120)) {
        let mut ledger = LikeLedger::new(15, 15);
        let mut accepted = 0usize;
        for (u, p, t) in &likes {
            if ledger.record(UserId(*u), PageId(*p), SimTime::from_secs(*t)) {
                accepted += 1;
            }
        }
        prop_assert_eq!(ledger.len(), accepted);
        let user_total: usize = (0..15).map(|u| ledger.user_like_count(UserId(u))).sum();
        let page_total: usize = (0..15).map(|p| ledger.page_like_count(PageId(p))).sum();
        prop_assert_eq!(user_total, ledger.len());
        prop_assert_eq!(page_total, ledger.len());
        let membership_total: usize =
            (0..15).map(|u| ledger.user_pages(UserId(u)).count()).sum();
        prop_assert_eq!(membership_total, ledger.len());
        // Sorted accessors really sort.
        for p in 0..15 {
            let sorted = ledger.of_page_sorted(PageId(p));
            prop_assert!(sorted.windows(2).all(|w| w[0].at <= w[1].at));
            prop_assert_eq!(sorted.len(), ledger.page_like_count(PageId(p)));
        }
    }

    /// Per-side streams are order-preserving projections of the global
    /// record stream: `of_user(u)` equals the records with that user, in
    /// global order, and `of_page(p)` likewise — whatever the (possibly
    /// duplicated, unordered) insert stream.
    #[test]
    fn ledger_streams_project_global_order(
        likes in prop::collection::vec((0u32..12, 0u32..12, 0u64..500), 0..150),
    ) {
        let mut ledger = LikeLedger::new(12, 12);
        for (u, p, t) in &likes {
            ledger.record(UserId(*u), PageId(*p), SimTime::from_secs(*t));
        }
        let all: Vec<_> = ledger.records().collect();
        prop_assert_eq!(all.len(), ledger.len());
        for u in 0..12 {
            let direct: Vec<_> = ledger.of_user(UserId(u)).collect();
            let projected: Vec<_> = all.iter().copied().filter(|r| r.user == UserId(u)).collect();
            prop_assert_eq!(direct, projected, "user {} stream", u);
            let sorted = ledger.of_user_sorted(UserId(u));
            prop_assert!(sorted.windows(2).all(|w| w[0].at <= w[1].at));
            prop_assert_eq!(sorted.len(), ledger.user_like_count(UserId(u)));
        }
        for p in 0..12 {
            let direct: Vec<_> = ledger.of_page(PageId(p)).collect();
            let projected: Vec<_> = all.iter().copied().filter(|r| r.page == PageId(p)).collect();
            prop_assert_eq!(direct, projected, "page {} stream", p);
        }
    }

    /// Batch ingestion is equivalent to recording each like in order — for
    /// any worker count — and the page-range shards stay consistent with
    /// the per-user index.
    #[test]
    fn ledger_ingest_matches_record(
        likes in prop::collection::vec((0u32..10, 0u32..9000, 0u64..500), 0..200),
        workers in 1usize..5,
    ) {
        use likelab_sim::Exec;
        let n_pages = 9_000; // spans three page-range shards
        let batch: Vec<_> = likes
            .iter()
            .map(|(u, p, t)| (UserId(*u), PageId(*p), SimTime::from_secs(*t)))
            .collect();
        let mut by_record = LikeLedger::new(10, n_pages);
        for &(u, p, t) in &batch {
            by_record.record(u, p, t);
        }
        let mut by_batch = LikeLedger::new(10, n_pages);
        let accepted = by_batch.ingest_batch(&batch, Exec::workers(workers));
        prop_assert_eq!(accepted, by_record.len());
        prop_assert_eq!(
            by_batch.records().collect::<Vec<_>>(),
            by_record.records().collect::<Vec<_>>()
        );
        for u in 0..10 {
            prop_assert_eq!(
                by_batch.of_user(UserId(u)).collect::<Vec<_>>(),
                by_record.of_user(UserId(u)).collect::<Vec<_>>()
            );
        }
        // Spot-check per-page postings on the pages actually touched.
        for &(_, p, _) in &batch {
            prop_assert_eq!(
                by_batch.of_page(p).collect::<Vec<_>>(),
                by_record.of_page(p).collect::<Vec<_>>()
            );
        }
    }

    /// Audience reports conserve mass: gender and age marginals both sum to
    /// the total, and geo shares sum to 1 for non-empty sets.
    #[test]
    fn audience_reports_conserve_mass(
        profiles in prop::collection::vec((any::<bool>(), 13u8..80, 0usize..10), 1..60),
    ) {
        let mut world = OsnWorld::new();
        let mut users = Vec::new();
        for (female, age, country_idx) in &profiles {
            let id = world.create_account(
                Profile {
                    gender: if *female { Gender::Female } else { Gender::Male },
                    age: *age,
                    country: Country::ALL[*country_idx],
                    home_region: 0,
                },
                ActorClass::Organic,
                PrivacySettings {
                    friend_list_public: false,
                    likes_public: false,
                    searchable: false,
                },
                SimTime::EPOCH,
            );
            users.push(id);
        }
        let report = AudienceReport::over_users(&world, &users);
        prop_assert_eq!(report.total, profiles.len());
        prop_assert_eq!(report.female + report.male, report.total);
        prop_assert_eq!(report.age_counts.iter().sum::<usize>(), report.total);
        let geo_sum: f64 = report.geo_distribution().iter().sum();
        prop_assert!((geo_sum - 1.0).abs() < 1e-9);
        let age_sum: f64 = report.age_distribution().iter().sum();
        prop_assert!((age_sum - 1.0).abs() < 1e-9);
    }

    /// Termination is one-way and removes the account from public surfaces
    /// while preserving the platform-side record.
    #[test]
    fn termination_is_permanent_and_hides(order in prop::collection::vec(0usize..6, 1..12)) {
        let mut world = OsnWorld::new();
        for _ in 0..6 {
            world.create_account(
                Profile {
                    gender: Gender::Male,
                    age: 30,
                    country: Country::Usa,
                    home_region: 0,
                },
                ActorClass::Bot(1),
                PrivacySettings {
                    friend_list_public: true,
                    likes_public: true,
                    searchable: true,
                },
                SimTime::EPOCH,
            );
        }
        let page = world.create_page("p", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        for u in 0..6u32 {
            world.record_like(UserId(u), page, SimTime::at_day(1));
        }
        let mut terminated = std::collections::HashSet::new();
        for (i, idx) in order.iter().enumerate() {
            let u = UserId(*idx as u32);
            let was_active = !terminated.contains(&u);
            let result = world.terminate_account(u, SimTime::at_day(2 + i as u64));
            prop_assert_eq!(result, was_active, "terminate returns prior activity");
            terminated.insert(u);
        }
        let visible = world.visible_likers(page);
        prop_assert_eq!(visible.len(), 6 - terminated.len());
        prop_assert!(visible.iter().all(|u| !terminated.contains(u)));
        prop_assert_eq!(world.all_likers(page).len(), 6, "platform record intact");
    }
}
