//! Samplers for the distributions the generative models need.
//!
//! The population synthesizer draws demographics from categorical marginals,
//! page popularity follows a Zipf law, per-user like counts are log-normal
//! (heavy-tailed, strictly positive — the paper observed 1 to 10,000 page
//! likes per user), organic activity is Poisson, and burst jitter is
//! exponential. Everything takes the crate [`Rng`] so seeded
//! runs stay reproducible.

use crate::rng::Rng;

/// Draw from an exponential distribution with the given rate (λ > 0).
///
/// # Panics
/// Panics when `rate` is not strictly positive and finite.
pub fn exponential(rng: &mut Rng, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "exponential rate must be positive, got {rate}"
    );
    // Inverse CDF; 1 - f64() is in (0, 1], so ln() is finite.
    -(1.0 - rng.f64()).ln() / rate
}

/// Draw from a standard normal via the Marsaglia polar method.
pub fn standard_normal(rng: &mut Rng) -> f64 {
    loop {
        let u = 2.0 * rng.f64() - 1.0;
        let v = 2.0 * rng.f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draw from a normal with the given mean and standard deviation (σ ≥ 0).
pub fn normal(rng: &mut Rng, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev.is_finite() && std_dev >= 0.0,
        "standard deviation must be non-negative, got {std_dev}"
    );
    mean + std_dev * standard_normal(rng)
}

/// Draw from a log-normal with the given parameters of the *underlying*
/// normal (`mu`, `sigma`). The median of the distribution is `exp(mu)`.
pub fn log_normal(rng: &mut Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Log-normal parameterized by its median and the multiplicative spread
/// `sigma` (in log-space). Convenient for calibrating to published medians,
/// e.g. "median page-like count 34".
pub fn log_normal_median(rng: &mut Rng, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "log-normal median must be positive");
    log_normal(rng, median.ln(), sigma)
}

/// Draw a Poisson-distributed count.
///
/// Uses Knuth's product method for small λ and a normal approximation with
/// continuity correction for large λ (the tail error is irrelevant at the
/// λ > 30 scale where it engages).
pub fn poisson(rng: &mut Rng, lambda: f64) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "poisson lambda must be non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, lambda, lambda.sqrt());
        if x < 0.0 {
            0
        } else {
            (x + 0.5) as u64
        }
    }
}

/// A Zipf sampler over ranks `1..=n` with exponent `s`, built once and reused
/// (rejection-free inverse-CDF over precomputed cumulative weights).
///
/// Page popularity in the background catalogue follows this law: a few pages
/// are liked by everyone, most are liked by almost no one.
///
/// Large samplers carry an equi-spaced bucket index over the cumulative
/// range, narrowing each draw's binary search from the full array to a
/// handful of elements — the background-page sampler is hit once per
/// synthesized like, so this is a hot path at scale. The index only engages
/// when the cumulative array is strictly increasing (every bucket bound is
/// runtime-checked against the actual target before use), so the returned
/// rank is always exactly the one the plain full-range search yields.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
    /// `buckets[k]` = first index whose cumulative weight reaches
    /// `total * k / ZIPF_BUCKETS`; empty when the index is disabled.
    buckets: Vec<u32>,
    /// Cumulative weights are strictly increasing (no denormal-flat runs),
    /// which licenses the `partition_point` formulation.
    strict: bool,
}

/// Ranks below this search the full array directly — the index only pays
/// for itself once the array outgrows a few cache lines.
const ZIPF_INDEX_MIN_RANKS: usize = 256;

/// Bucket count of the sampler's acceleration index.
const ZIPF_BUCKETS: usize = 2048;

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        let strict = cumulative.windows(2).all(|w| w[0] < w[1]);
        let mut buckets = Vec::new();
        if strict && n >= ZIPF_INDEX_MIN_RANKS {
            buckets = (0..=ZIPF_BUCKETS)
                .map(|k| {
                    let thr = total * (k as f64 / ZIPF_BUCKETS as f64);
                    cumulative.partition_point(|c| *c < thr) as u32
                })
                .collect();
        }
        Zipf {
            cumulative,
            buckets,
            strict,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there is exactly one rank (degenerate sampler).
    pub fn is_empty(&self) -> bool {
        false // construction guarantees n > 0
    }

    /// Sample a 0-based rank (0 is the most popular).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let target = rng.f64() * total;
        self.rank_for(target)
    }

    /// The rank for an inverse-CDF target in `[0, total)`.
    fn rank_for(&self, target: f64) -> usize {
        let n = self.cumulative.len();
        let total = *self.cumulative.last().expect("non-empty");
        // With strictly increasing weights, the historical
        // `binary_search_by(total_cmp)` + Ok/Err mapping reduces to
        // "number of weights <= target" (clamped): an exact hit at `i`
        // mapped to `i + 1`, a miss to its insertion point — both equal
        // that count.
        if !self.buckets.is_empty() {
            let k = (((target / total) * ZIPF_BUCKETS as f64) as usize).min(ZIPF_BUCKETS - 1);
            let (lo, hi) = (self.buckets[k] as usize, self.buckets[k + 1] as usize);
            // Guard the narrowed range against float slop at bucket
            // boundaries: everything before `lo` must be <= target and
            // everything from `hi` on must be > target, otherwise fall
            // through to the full search.
            if (lo == 0 || self.cumulative[lo - 1] <= target)
                && (hi == n || self.cumulative[hi] > target)
            {
                let p = lo + self.cumulative[lo..hi].partition_point(|c| *c <= target);
                return p.min(n - 1);
            }
        }
        if self.strict {
            return self.cumulative.partition_point(|c| *c <= target).min(n - 1);
        }
        // First cumulative weight strictly above the target.
        match self.cumulative.binary_search_by(|c| c.total_cmp(&target)) {
            Ok(i) => (i + 1).min(n - 1),
            Err(i) => i.min(n - 1),
        }
    }
}

/// A categorical distribution with named outcomes, sampled via cumulative
/// weights. Used for demographics marginals (country, gender, age bracket).
#[derive(Clone, Debug)]
pub struct Categorical<T: Clone> {
    outcomes: Vec<T>,
    cumulative: Vec<f64>,
}

impl<T: Clone> Categorical<T> {
    /// Build from `(outcome, weight)` pairs. Weights need not sum to one.
    ///
    /// # Panics
    /// Panics when empty, when a weight is negative/non-finite, or when all
    /// weights are zero.
    pub fn new(pairs: &[(T, f64)]) -> Self {
        assert!(!pairs.is_empty(), "categorical over no outcomes");
        let mut outcomes = Vec::with_capacity(pairs.len());
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut total = 0.0;
        for (o, w) in pairs {
            assert!(w.is_finite() && *w >= 0.0, "invalid weight {w}");
            total += *w;
            outcomes.push(o.clone());
            cumulative.push(total);
        }
        assert!(total > 0.0, "categorical weights sum to zero");
        Categorical {
            outcomes,
            cumulative,
        }
    }

    /// Sample an outcome.
    pub fn sample(&self, rng: &mut Rng) -> T {
        let total = *self.cumulative.last().expect("non-empty");
        let target = rng.f64() * total;
        let idx = match self.cumulative.binary_search_by(|c| c.total_cmp(&target)) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        self.outcomes[idx.min(self.outcomes.len() - 1)].clone()
    }

    /// The outcomes, in construction order.
    pub fn outcomes(&self) -> &[T] {
        &self.outcomes
    }

    /// The probability of outcome `i`.
    pub fn probability(&self, i: usize) -> f64 {
        // lint:allow(unwrap-in-library): constructor rejects empty outcome sets
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(0xD15EA5E)
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} should be ~0.5");
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = rng();
        assert!((0..10_000).all(|_| exponential(&mut r, 0.1) >= 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        exponential(&mut rng(), 0.0);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn log_normal_median_calibration() {
        let mut r = rng();
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n)
            .map(|_| log_normal_median(&mut r, 34.0, 1.2))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!(
            (median / 34.0 - 1.0).abs() < 0.05,
            "median {median} should be ~34"
        );
        assert!(xs.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| poisson(&mut r, 3.5)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<u64> = (0..n).map(|_| poisson(&mut r, 200.0)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / n as f64;
        let var = xs.iter().map(|x| (*x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 1.0, "mean {mean}");
        assert!((var / 200.0 - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        assert_eq!(poisson(&mut rng(), 0.0), 0);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(1_000, 1.0);
        let mut r = rng();
        let n = 100_000;
        let mut counts = vec![0u32; 1_000];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        // Under Zipf(s=1, n=1000), P(rank 1) = 1/H_1000 ≈ 0.1336.
        let p1 = f64::from(counts[0]) / n as f64;
        assert!((p1 - 0.1336).abs() < 0.01, "P(rank 1) = {p1}");
        // Monotone-ish decay: first rank beats the 100th by a wide margin.
        assert!(counts[0] > counts[99] * 10);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = vec![0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            assert!((f64::from(c) / 50_000.0 - 0.1).abs() < 0.01);
        }
    }

    #[test]
    fn zipf_index_matches_plain_binary_search() {
        // The bucket index must return exactly the rank the historical
        // full-array search picked, target for target — including exact
        // cumulative values and bucket-boundary neighborhoods.
        for (n, s) in [(300usize, 1.0), (1_000, 0.8), (50_000, 1.0), (255, 1.2)] {
            let z = Zipf::new(n, s);
            let total = *z.cumulative.last().unwrap();
            let mut r = rng();
            let mut targets: Vec<f64> = (0..20_000).map(|_| r.f64() * total).collect();
            for k in 0..=64 {
                let thr = total * (k as f64 / 64.0);
                targets.extend([thr, thr.next_down(), thr.next_up()]);
            }
            targets.extend(z.cumulative.iter().step_by(7).copied());
            for target in targets {
                let target = target.clamp(0.0, total);
                let reference = match z.cumulative.binary_search_by(|c| c.total_cmp(&target)) {
                    Ok(i) => (i + 1).min(n - 1),
                    Err(i) => i.min(n - 1),
                };
                assert_eq!(z.rank_for(target), reference, "n={n} s={s} t={target}");
            }
        }
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 1.5);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let c = Categorical::new(&[("a", 1.0), ("b", 2.0), ("c", 7.0)]);
        let mut r = rng();
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(c.sample(&mut r)).or_insert(0u32) += 1;
        }
        assert!((f64::from(counts["a"]) / n as f64 - 0.1).abs() < 0.01);
        assert!((f64::from(counts["b"]) / n as f64 - 0.2).abs() < 0.01);
        assert!((f64::from(counts["c"]) / n as f64 - 0.7).abs() < 0.01);
    }

    #[test]
    fn categorical_zero_weight_is_never_drawn() {
        let c = Categorical::new(&[(1u8, 0.0), (2u8, 1.0)]);
        let mut r = rng();
        for _ in 0..10_000 {
            assert_eq!(c.sample(&mut r), 2);
        }
    }

    #[test]
    fn categorical_probability_accessor() {
        let c = Categorical::new(&[("x", 3.0), ("y", 1.0)]);
        assert!((c.probability(0) - 0.75).abs() < 1e-12);
        assert!((c.probability(1) - 0.25).abs() < 1e-12);
        assert_eq!(c.outcomes(), &["x", "y"]);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn categorical_rejects_all_zero() {
        let _ = Categorical::new(&[("a", 0.0)]);
    }
}
