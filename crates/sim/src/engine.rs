//! The simulation driver.
//!
//! [`Engine`] owns the clock and the event queue; the orchestration layer
//! (the honeypot study) supplies the event type and a handler. The engine
//! enforces the fundamental discrete-event invariant: the clock never moves
//! backwards, and events scheduled in the past are rejected loudly rather
//! than silently reordered.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A discrete-event simulation driver over an event type `E`.
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    fired: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine with the clock at the study epoch.
    pub fn new() -> Self {
        Engine {
            now: SimTime::EPOCH,
            queue: EventQueue::new(),
            fired: 0,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The underlying queue (read-only) — lets checkpointing snapshot the
    /// pending entries via [`EventQueue::entries`].
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Rebuild an engine from checkpointed parts: the clock, the fired
    /// counter, and a queue restored with [`EventQueue::from_entries`].
    /// Stepping the rebuilt engine is indistinguishable from stepping the
    /// original.
    pub fn from_parts(now: SimTime, fired: u64, queue: EventQueue<E>) -> Self {
        Engine { now, queue, fired }
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics when `at` is before the current clock — an event in the past is
    /// always an orchestration bug, and silently clamping it would corrupt
    /// the temporal analyses.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {now}",
            now = self.now
        );
        self.queue.push(at, event);
    }

    /// Pop the next event, advancing the clock to its firing time.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        self.step_if(|_, _| true)
    }

    /// Pop the next event only when `pred` approves it, advancing the clock
    /// and the fired counter exactly as [`step`][Self::step] would. When the
    /// front event fails the predicate (or the queue is empty), nothing is
    /// consumed and `None` is returned.
    ///
    /// The event loop uses this to drain coalesced runs of same-kind events
    /// (see [`EventQueue::pop_if`]): interleaving `step_if` with `step`
    /// dispatches the exact event sequence `step` alone would.
    pub fn step_if(&mut self, pred: impl FnOnce(SimTime, &E) -> bool) -> Option<(SimTime, E)> {
        let (at, ev) = self.queue.pop_if(pred)?;
        debug_assert!(at >= self.now, "queue yielded an event in the past");
        self.now = at;
        self.fired += 1;
        Some((at, ev))
    }

    /// Run until the queue drains or the clock would pass `end`, dispatching
    /// each event to `handler`. Events at exactly `end` still fire. The
    /// handler may schedule further events through the engine it receives.
    ///
    /// Returns the number of events dispatched by this call.
    pub fn run_until<F>(&mut self, end: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        let before = self.fired;
        while let Some(next) = self.queue.peek_time() {
            if next > end {
                break;
            }
            let (at, ev) = self.step().expect("peeked event must pop");
            handler(self, at, ev);
        }
        // The clock still advances to `end` even if the tail was quiet, so a
        // subsequent run starts from where the caller said the world stands.
        if end > self.now {
            self.now = end;
        }
        self.fired - before
    }

    /// Run until the queue fully drains.
    pub fn run_to_completion<F>(&mut self, mut handler: F) -> u64
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        let before = self.fired;
        while let Some((at, ev)) = self.step() {
            handler(self, at, ev);
        }
        self.fired - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_advances_with_events() {
        let mut e = Engine::new();
        e.schedule(SimTime::at_day(1), Ev::Tick(1));
        e.schedule(SimTime::at_day(2), Ev::Tick(2));
        let mut seen = Vec::new();
        e.run_to_completion(|eng, at, ev| {
            assert_eq!(eng.now(), at);
            seen.push((at.day(), ev));
        });
        assert_eq!(seen, vec![(1, Ev::Tick(1)), (2, Ev::Tick(2))]);
        assert_eq!(e.fired(), 2);
    }

    #[test]
    fn handler_can_reschedule() {
        // A self-perpetuating 2-hour poll, the crawler's core pattern.
        let mut e: Engine<()> = Engine::new();
        e.schedule(SimTime::EPOCH, ());
        let mut polls = 0u32;
        e.run_until(SimTime::at_day(1), |eng, at, ()| {
            polls += 1;
            eng.schedule(at + SimDuration::hours(2), ());
        });
        // Polls at 0h, 2h, ..., 24h inclusive = 13.
        assert_eq!(polls, 13);
        assert_eq!(e.now(), SimTime::at_day(1));
        assert_eq!(e.pending(), 1, "the 26h poll stays queued");
    }

    #[test]
    fn run_until_advances_clock_even_when_quiet() {
        let mut e: Engine<()> = Engine::new();
        let n = e.run_until(SimTime::at_day(5), |_, _, ()| {});
        assert_eq!(n, 0);
        assert_eq!(e.now(), SimTime::at_day(5));
    }

    #[test]
    fn events_exactly_at_end_fire() {
        let mut e = Engine::new();
        e.schedule(SimTime::at_day(3), Ev::Tick(3));
        let mut hit = false;
        e.run_until(SimTime::at_day(3), |_, _, _| hit = true);
        assert!(hit);
    }

    #[test]
    fn events_after_end_stay_pending() {
        let mut e = Engine::new();
        e.schedule(SimTime::at_day(3) + SimDuration::secs(1), Ev::Tick(3));
        e.run_until(SimTime::at_day(3), |_, _, _| panic!("must not fire"));
        assert_eq!(e.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = Engine::new();
        e.schedule(SimTime::at_day(1), Ev::Tick(1));
        e.run_to_completion(|_, _, _| {});
        e.schedule(SimTime::EPOCH, Ev::Tick(0));
    }

    #[test]
    fn checkpointed_engine_resumes_identically() {
        // Drive two engines through the same schedule; freeze one midway,
        // rebuild it from parts, and check the tails agree event for event.
        let schedule = |e: &mut Engine<u32>| {
            for i in 0..20u32 {
                e.schedule(SimTime::at_day(u64::from(i / 4)), i);
            }
        };
        let mut reference = Engine::new();
        schedule(&mut reference);
        let mut live = Engine::new();
        schedule(&mut live);
        let mut ref_seen = Vec::new();
        let mut live_seen = Vec::new();
        for _ in 0..7 {
            ref_seen.push(reference.step().unwrap());
            live_seen.push(live.step().unwrap());
        }
        let entries: Vec<(SimTime, u64, u32)> = live
            .queue()
            .entries()
            .into_iter()
            .map(|(at, seq, e)| (at, seq, *e))
            .collect();
        let queue = EventQueue::from_entries(entries, live.queue().pushed_total());
        let mut resumed = Engine::from_parts(live.now(), live.fired(), queue);
        assert_eq!(resumed.fired(), 7);
        while let Some(ev) = reference.step() {
            ref_seen.push(ev);
            live_seen.push(resumed.step().unwrap());
        }
        assert!(resumed.step().is_none());
        assert_eq!(ref_seen, live_seen);
        assert_eq!(resumed.fired(), reference.fired());
    }

    #[test]
    fn same_time_events_fire_in_schedule_order() {
        let mut e = Engine::new();
        for i in 0..10 {
            e.schedule(SimTime::at_day(1), Ev::Tick(i));
        }
        let mut order = Vec::new();
        e.run_to_completion(|_, _, Ev::Tick(i)| order.push(i));
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }
}
