//! The event-log substrate: framed, seekable, corruption-detecting codecs.
//!
//! A *log* is a header plus a sequence of records. The header carries a
//! format version and a caller-defined metadata document (the study config
//! and RNG provenance live there); each record is a monotone sequence
//! number plus a payload lowered to the serde data model ([`Value`]).
//! Payload *semantics* belong to higher layers (`likelab_osn::log` defines
//! the world-mutation vocabulary, `likelab_core` the study records) — this
//! module only guarantees framing, ordering, and integrity.
//!
//! Two codecs share the same logical model:
//!
//! - **binary** — a compact framed stream (`LLOG` magic, version, FNV-1a
//!   checksums per record) meant for capture files and checkpoints. It is
//!   appendable: [`FrameWriter`] streams records to any [`io::Write`] and
//!   reports byte offsets, so a checkpoint can pin "the log up to byte N".
//! - **JSON lines** — one JSON object per line, for grepping and diffing.
//!
//! Decoding is strict: a truncated tail, a failed checksum, a version skew,
//! or a sequence number that does not strictly increase is a hard
//! [`LogError`] — never a silent partial replay.

use serde::Value;
use std::fmt;
use std::io;

/// The binary codec's magic bytes.
pub const MAGIC: [u8; 4] = *b"LLOG";

/// Current format version (bump on any framing or vocabulary change; see
/// DESIGN.md for the versioning policy).
pub const FORMAT_VERSION: u16 = 1;

/// The JSONL codec's magic string (first line, `"magic"` field).
pub const JSONL_MAGIC: &str = "likelab-log";

/// Log header: format version plus caller metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHeader {
    /// Format version of the stream (readers reject mismatches).
    pub version: u16,
    /// Caller-defined metadata (config, seed, RNG stream provenance).
    pub meta: Value,
}

impl LogHeader {
    /// A current-version header around `meta`.
    pub fn new(meta: Value) -> Self {
        LogHeader {
            version: FORMAT_VERSION,
            meta,
        }
    }
}

/// One log record: a monotone sequence number and a payload value.
#[derive(Clone, Debug, PartialEq)]
pub struct LogRecord {
    /// Strictly increasing within a stream (gaps allowed, repeats not).
    pub seq: u64,
    /// The payload, lowered to the serde data model.
    pub payload: Value,
}

/// Why a log could not be decoded (or written). Every variant is a hard
/// error: decoders never return a partial record set alongside one.
#[derive(Debug, Clone, PartialEq)]
pub enum LogError {
    /// The stream ends mid-header or mid-record.
    Truncated {
        /// Byte (binary) or line (JSONL) offset where the data ran out.
        offset: u64,
    },
    /// The stream does not start with the expected magic.
    BadMagic,
    /// The stream was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the stream.
        found: u16,
        /// Version this reader implements.
        expected: u16,
    },
    /// A frame or payload failed validation (checksum, JSON, schema).
    Corrupt {
        /// Byte (binary) or line (JSONL) offset of the offending record.
        offset: u64,
        /// Human-readable cause.
        reason: String,
    },
    /// A sequence number failed to strictly increase.
    NonMonotoneSeq {
        /// The previous record's sequence number.
        prev: u64,
        /// The offending record's sequence number.
        next: u64,
    },
    /// A followed file shrank below the follower's committed offset — the
    /// producer truncated or rotated it. Distinct from [`Truncated`]
    /// (which means the stream *ended* mid-frame): already-consumed bytes
    /// are gone, so the follower cannot continue and the caller must
    /// re-open the source from scratch. Reported by
    /// [`FollowReader::poll`](crate::tail::FollowReader::poll), and sticky
    /// while the file stays short.
    ShrunkSource {
        /// Bytes the follower had already consumed.
        read_bytes: u64,
        /// The file's current (smaller) length.
        len: u64,
    },
    /// An I/O failure while reading or writing a sink.
    Io(String),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Truncated { offset } => {
                write!(f, "log truncated at offset {offset}")
            }
            LogError::BadMagic => write!(f, "not a likelab event log (bad magic)"),
            LogError::VersionMismatch { found, expected } => {
                write!(f, "log format version {found}, reader expects {expected}")
            }
            LogError::Corrupt { offset, reason } => {
                write!(f, "log corrupt at offset {offset}: {reason}")
            }
            LogError::NonMonotoneSeq { prev, next } => {
                write!(f, "non-monotone sequence: {next} after {prev}")
            }
            LogError::ShrunkSource { read_bytes, len } => {
                write!(
                    f,
                    "followed log shrank to {len} bytes below the {read_bytes} already \
                     consumed (truncated or rotated under the follower)"
                )
            }
            LogError::Io(e) => write!(f, "log i/o: {e}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<io::Error> for LogError {
    fn from(e: io::Error) -> Self {
        LogError::Io(e.to_string())
    }
}

/// FNV-1a over a byte slice — the per-record integrity checksum. Not
/// cryptographic; it catches the bit rot and partial writes a capture file
/// meets in practice. Shared with the incremental [`crate::tail`] decoder.
pub(crate) fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn payload_bytes(payload: &Value) -> Result<Vec<u8>, LogError> {
    serde_json::to_string(payload)
        .map(String::into_bytes)
        .map_err(|e| LogError::Io(e.to_string()))
}

fn header_bytes(header: &LogHeader) -> Result<Vec<u8>, LogError> {
    let meta = payload_bytes(&header.meta)?;
    let mut out = Vec::with_capacity(meta.len() + 16);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&header.version.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]); // reserved
    out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
    out.extend_from_slice(&meta);
    Ok(out)
}

/// Frame one record: `[len: u32][seq: u64][fnv1a: u64][payload bytes]`.
fn frame_bytes(seq: u64, payload: &Value) -> Result<Vec<u8>, LogError> {
    let body = payload_bytes(payload)?;
    let mut out = Vec::with_capacity(body.len() + 20);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&fnv1a_bytes(&body).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Encode a whole log to the binary format.
pub fn encode_binary(header: &LogHeader, records: &[LogRecord]) -> Result<Vec<u8>, LogError> {
    let mut out = header_bytes(header)?;
    for r in records {
        out.extend_from_slice(&frame_bytes(r.seq, &r.payload)?);
    }
    Ok(out)
}

/// Read a little-endian `u16` at `pos`; the array pattern makes the
/// width check and the decode one infallible step.
fn read_u16(bytes: &[u8], pos: usize) -> Result<u16, LogError> {
    match bytes.get(pos..pos + 2) {
        Some(&[a, b]) => Ok(u16::from_le_bytes([a, b])),
        _ => Err(LogError::Truncated { offset: pos as u64 }),
    }
}

/// Read a little-endian `u32` at `pos`.
fn read_u32(bytes: &[u8], pos: usize) -> Result<u32, LogError> {
    match bytes.get(pos..pos + 4) {
        Some(&[a, b, c, d]) => Ok(u32::from_le_bytes([a, b, c, d])),
        _ => Err(LogError::Truncated { offset: pos as u64 }),
    }
}

/// Read a little-endian `u64` at `pos`.
fn read_u64(bytes: &[u8], pos: usize) -> Result<u64, LogError> {
    match bytes.get(pos..pos + 8) {
        Some(&[a, b, c, d, e, f, g, h]) => Ok(u64::from_le_bytes([a, b, c, d, e, f, g, h])),
        _ => Err(LogError::Truncated { offset: pos as u64 }),
    }
}

/// Decode a binary log. Strict: any framing, checksum, or ordering defect
/// is an error, and no records are returned alongside one.
pub fn decode_binary(bytes: &[u8]) -> Result<(LogHeader, Vec<LogRecord>), LogError> {
    let take = |pos: usize, n: usize| -> Result<&[u8], LogError> {
        bytes
            .get(pos..pos + n)
            .ok_or(LogError::Truncated { offset: pos as u64 })
    };
    if bytes.len() < 4 {
        return Err(LogError::Truncated { offset: 0 });
    }
    if bytes[0..4] != MAGIC {
        return Err(LogError::BadMagic);
    }
    let version = read_u16(bytes, 4)?;
    if version != FORMAT_VERSION {
        return Err(LogError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let meta_len = read_u32(bytes, 8)? as usize;
    let meta_bytes = take(12, meta_len)?;
    let meta_text = std::str::from_utf8(meta_bytes).map_err(|e| LogError::Corrupt {
        offset: 12,
        reason: format!("header not utf-8: {e}"),
    })?;
    let meta: Value = serde_json::from_str(meta_text).map_err(|e| LogError::Corrupt {
        offset: 12,
        reason: format!("header not json: {e}"),
    })?;
    let header = LogHeader { version, meta };

    let mut records = Vec::new();
    let mut pos = 12 + meta_len;
    let mut prev_seq: Option<u64> = None;
    while pos < bytes.len() {
        let len = read_u32(bytes, pos)? as usize;
        let seq = read_u64(bytes, pos + 4)?;
        let sum = read_u64(bytes, pos + 12)?;
        let body = take(pos + 20, len)?;
        if fnv1a_bytes(body) != sum {
            return Err(LogError::Corrupt {
                offset: pos as u64,
                reason: format!("checksum mismatch on record seq {seq}"),
            });
        }
        if let Some(prev) = prev_seq {
            if seq <= prev {
                return Err(LogError::NonMonotoneSeq { prev, next: seq });
            }
        }
        let text = std::str::from_utf8(body).map_err(|e| LogError::Corrupt {
            offset: pos as u64,
            reason: format!("payload not utf-8: {e}"),
        })?;
        let payload: Value = serde_json::from_str(text).map_err(|e| LogError::Corrupt {
            offset: pos as u64,
            reason: format!("payload not json: {e}"),
        })?;
        records.push(LogRecord { seq, payload });
        prev_seq = Some(seq);
        pos += 20 + len;
    }
    Ok((header, records))
}

/// Encode a whole log to the JSONL format (header line, then one record
/// per line).
pub fn encode_jsonl(header: &LogHeader, records: &[LogRecord]) -> Result<String, LogError> {
    let mut out = String::new();
    let head = Value::Object(vec![
        ("magic".into(), Value::Str(JSONL_MAGIC.into())),
        ("version".into(), Value::UInt(u64::from(header.version))),
        ("meta".into(), header.meta.clone()),
    ]);
    out.push_str(&serde_json::to_string(&head).map_err(|e| LogError::Io(e.to_string()))?);
    out.push('\n');
    for r in records {
        let line = Value::Object(vec![
            ("seq".into(), Value::UInt(r.seq)),
            ("event".into(), r.payload.clone()),
        ]);
        out.push_str(&serde_json::to_string(&line).map_err(|e| LogError::Io(e.to_string()))?);
        out.push('\n');
    }
    Ok(out)
}

/// Decode a JSONL log. Offsets in errors are 1-based line numbers.
pub fn decode_jsonl(text: &str) -> Result<(LogHeader, Vec<LogRecord>), LogError> {
    let mut lines = text.lines().enumerate();
    let Some((_, first)) = lines.next() else {
        return Err(LogError::Truncated { offset: 0 });
    };
    let head: Value = serde_json::from_str(first).map_err(|_| LogError::BadMagic)?;
    if head.get("magic").and_then(Value::as_str) != Some(JSONL_MAGIC) {
        return Err(LogError::BadMagic);
    }
    let version = match head.get("version") {
        Some(Value::UInt(v)) => *v as u16,
        _ => return Err(LogError::BadMagic),
    };
    if version != FORMAT_VERSION {
        return Err(LogError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let meta = head.get("meta").cloned().unwrap_or(Value::Null);
    let mut records = Vec::new();
    let mut prev_seq: Option<u64> = None;
    for (i, line) in lines {
        let offset = i as u64 + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line).map_err(|e| LogError::Corrupt {
            offset,
            reason: format!("line not json: {e}"),
        })?;
        let seq = match v.get("seq") {
            Some(Value::UInt(s)) => *s,
            _ => {
                return Err(LogError::Corrupt {
                    offset,
                    reason: "record missing `seq`".into(),
                })
            }
        };
        if let Some(prev) = prev_seq {
            if seq <= prev {
                return Err(LogError::NonMonotoneSeq { prev, next: seq });
            }
        }
        let payload = v.get("event").cloned().ok_or_else(|| LogError::Corrupt {
            offset,
            reason: "record missing `event`".into(),
        })?;
        records.push(LogRecord { seq, payload });
        prev_seq = Some(seq);
    }
    Ok((LogHeader { version, meta }, records))
}

/// Streaming binary-log writer over any [`io::Write`] sink.
///
/// Tracks bytes written and the last sequence number, so callers can pin
/// resumable offsets (checkpoints store `bytes_written` and truncate the
/// file back to it before continuing).
pub struct FrameWriter<W: io::Write> {
    sink: W,
    bytes: u64,
    last_seq: Option<u64>,
}

impl<W: io::Write> FrameWriter<W> {
    /// Start a fresh stream: writes the header immediately.
    pub fn new(mut sink: W, header: &LogHeader) -> Result<Self, LogError> {
        let head = header_bytes(header)?;
        sink.write_all(&head)?;
        Ok(FrameWriter {
            sink,
            bytes: head.len() as u64,
            last_seq: None,
        })
    }

    /// Continue an existing stream (header already on disk): the sink must
    /// be positioned at `bytes` — usually a file truncated to a checkpoint
    /// offset and seeked to its end.
    pub fn resume(sink: W, bytes: u64, last_seq: Option<u64>) -> Self {
        FrameWriter {
            sink,
            bytes,
            last_seq,
        }
    }

    /// Append one record. `seq` must strictly increase.
    pub fn append(&mut self, seq: u64, payload: &Value) -> Result<(), LogError> {
        if let Some(prev) = self.last_seq {
            if seq <= prev {
                return Err(LogError::NonMonotoneSeq { prev, next: seq });
            }
        }
        let frame = frame_bytes(seq, payload)?;
        self.sink.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        self.last_seq = Some(seq);
        Ok(())
    }

    /// Flush the sink (call before pinning a checkpoint offset).
    pub fn flush(&mut self) -> Result<(), LogError> {
        self.sink.flush()?;
        Ok(())
    }

    /// Total bytes written, header included.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// The last appended sequence number, if any.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> LogHeader {
        LogHeader::new(Value::Object(vec![
            ("seed".into(), Value::UInt(42)),
            ("preset".into(), Value::Str("paper".into())),
        ]))
    }

    fn sample_records() -> Vec<LogRecord> {
        (0..5)
            .map(|i| LogRecord {
                seq: i,
                payload: Value::Object(vec![
                    ("kind".into(), Value::Str("like".into())),
                    ("user".into(), Value::UInt(i * 7)),
                ]),
            })
            .collect()
    }

    #[test]
    fn binary_roundtrips() {
        let bytes = encode_binary(&sample_header(), &sample_records()).unwrap();
        let (h, r) = decode_binary(&bytes).unwrap();
        assert_eq!(h, sample_header());
        assert_eq!(r, sample_records());
    }

    #[test]
    fn jsonl_roundtrips() {
        let text = encode_jsonl(&sample_header(), &sample_records()).unwrap();
        let (h, r) = decode_jsonl(&text).unwrap();
        assert_eq!(h, sample_header());
        assert_eq!(r, sample_records());
        assert_eq!(text.lines().count(), 6, "header + 5 records");
    }

    #[test]
    fn empty_log_is_valid_both_ways() {
        let bytes = encode_binary(&sample_header(), &[]).unwrap();
        assert!(decode_binary(&bytes).unwrap().1.is_empty());
        let text = encode_jsonl(&sample_header(), &[]).unwrap();
        assert!(decode_jsonl(&text).unwrap().1.is_empty());
    }

    #[test]
    fn truncation_is_a_hard_error() {
        let bytes = encode_binary(&sample_header(), &sample_records()).unwrap();
        // Every proper prefix that cuts into a record must fail loudly.
        let cut = bytes.len() - 3;
        match decode_binary(&bytes[..cut]) {
            Err(LogError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_detected_by_checksum() {
        let mut bytes = encode_binary(&sample_header(), &sample_records()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        match decode_binary(&bytes) {
            Err(LogError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = encode_binary(&sample_header(), &[]).unwrap();
        bytes[0] = b'X';
        assert_eq!(decode_binary(&bytes), Err(LogError::BadMagic));
        let mut versioned = encode_binary(&sample_header(), &[]).unwrap();
        versioned[4] = 99;
        assert!(matches!(
            decode_binary(&versioned),
            Err(LogError::VersionMismatch { found: 99, .. })
        ));
    }

    #[test]
    fn non_monotone_seq_is_rejected() {
        let records = vec![
            LogRecord {
                seq: 5,
                payload: Value::Null,
            },
            LogRecord {
                seq: 5,
                payload: Value::Null,
            },
        ];
        let bytes = encode_binary(&sample_header(), &records).unwrap();
        assert_eq!(
            decode_binary(&bytes),
            Err(LogError::NonMonotoneSeq { prev: 5, next: 5 })
        );
        let text = encode_jsonl(&sample_header(), &records).unwrap();
        assert_eq!(
            decode_jsonl(&text),
            Err(LogError::NonMonotoneSeq { prev: 5, next: 5 })
        );
    }

    #[test]
    fn frame_writer_matches_batch_encoder() {
        let header = sample_header();
        let records = sample_records();
        let batch = encode_binary(&header, &records).unwrap();
        let mut sink = Vec::new();
        {
            let mut w = FrameWriter::new(&mut sink, &header).unwrap();
            for r in &records {
                w.append(r.seq, &r.payload).unwrap();
            }
            assert_eq!(w.bytes_written(), batch.len() as u64);
            assert_eq!(w.last_seq(), Some(4));
        }
        assert_eq!(sink, batch, "streamed and batch encodings must agree");
    }

    #[test]
    fn frame_writer_rejects_seq_reuse() {
        let mut w = FrameWriter::new(Vec::new(), &sample_header()).unwrap();
        w.append(1, &Value::Null).unwrap();
        assert!(matches!(
            w.append(1, &Value::Null),
            Err(LogError::NonMonotoneSeq { prev: 1, next: 1 })
        ));
    }

    #[test]
    fn jsonl_corrupt_line_is_reported_with_offset() {
        let mut text = encode_jsonl(&sample_header(), &sample_records()).unwrap();
        text.push_str("{not json\n");
        match decode_jsonl(&text) {
            Err(LogError::Corrupt { offset, .. }) => assert_eq!(offset, 7, "1-based line"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
