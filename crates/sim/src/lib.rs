//! # likelab-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the like-fraud laboratory: a virtual clock
//! ([`SimTime`]/[`SimDuration`]), a stable-ordered event queue wrapped in a
//! driver ([`Engine`]), a reproducible random source ([`Rng`], xoshiro256**
//! pinned by golden tests), the distribution samplers the generative models
//! need ([`dist`]), and a run journal ([`Trace`]).
//!
//! ## Why synchronous and single-threaded?
//!
//! The workload is pure CPU-bound simulation. Following the networking
//! guides' own advice (async runtimes buy nothing for CPU-bound work) the
//! kernel is synchronous; determinism is the feature that matters here,
//! because a `(seed, config)` pair must regenerate an identical study —
//! that's what makes the reproduction auditable.
//!
//! The *event loop* stays single-threaded, but the stages around it —
//! population synthesis before a run, campaign analysis after one, and
//! multi-seed sweeps above it — are embarrassingly parallel. The
//! [`parallel`] module fans those out without giving up determinism: work
//! is identified by index, per-index RNG streams come from
//! [`Rng::split`](rng::Rng::split), and results land in per-index slots, so
//! parallel output is bit-identical to sequential.
//!
//! ```
//! use likelab_sim::{Engine, SimDuration, SimTime};
//!
//! // A crawler that polls every 2 hours for a day.
//! let mut engine: Engine<&str> = Engine::new();
//! engine.schedule(SimTime::EPOCH, "poll");
//! let mut polls = 0;
//! engine.run_until(SimTime::at_day(1), |eng, now, _| {
//!     polls += 1;
//!     eng.schedule(now + SimDuration::hours(2), "poll");
//! });
//! assert_eq!(polls, 13); // 0h, 2h, ..., 24h
//! ```

pub mod dist;
pub mod engine;
pub mod event;
pub mod parallel;
pub mod queue;
pub mod rng;
pub mod tail;
pub mod time;
pub mod trace;

pub use engine::Engine;
pub use event::{LogError, LogHeader, LogRecord};
pub use parallel::{parallel_jobs, parallel_map, Exec};
pub use queue::EventQueue;
pub use rng::{derive_stream_seed, Rng};
pub use tail::{FollowReader, TailReader};
pub use time::{SimDuration, SimTime};
pub use trace::{Note, Trace};
