//! Deterministic data parallelism.
//!
//! The event loop itself stays single-threaded (see the crate docs), but two
//! surrounding stages are embarrassingly parallel: synthesizing independent
//! slices of the population before a run, and analyzing independent campaigns
//! after one. This module provides the one primitive both need —
//! [`parallel_map`] — plus the [`Exec`] policy that selects between a
//! sequential loop and a scoped worker pool.
//!
//! ## Determinism contract
//!
//! `parallel_map(exec, items, f)` returns exactly `items.iter().map(f)` in
//! item order, for every `exec`. Workers claim item *indices* from a shared
//! atomic counter and write results into per-index slots, so scheduling
//! affects only wall-clock time, never content or order. Combined with
//! [`Rng::split`](crate::rng::Rng::split) — which derives a child stream from
//! an index without mutating the parent — callers get bit-identical output
//! from sequential and parallel runs: randomness flows from indices, results
//! from slots, and neither observes thread interleaving.

use likelab_obs::metrics;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count picked by [`Exec::auto`].
pub const THREADS_ENV: &str = "LIKELAB_THREADS";

/// Execution policy for [`parallel_map`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exec {
    /// Run in the calling thread, in item order.
    Sequential,
    /// Fan out across `workers` scoped threads (clamped to at least 1).
    Parallel {
        /// Number of worker threads to spawn.
        workers: usize,
    },
}

impl Exec {
    /// Parallel with a worker per available core, unless the `LIKELAB_THREADS`
    /// environment variable overrides the count (`LIKELAB_THREADS=1` forces
    /// sequential execution).
    pub fn auto() -> Exec {
        let workers = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|n| *n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get));
        if workers <= 1 {
            Exec::Sequential
        } else {
            Exec::Parallel { workers }
        }
    }

    /// Parallel with exactly `workers` threads (`0` or `1` mean sequential).
    pub fn workers(workers: usize) -> Exec {
        if workers <= 1 {
            Exec::Sequential
        } else {
            Exec::Parallel { workers }
        }
    }

    /// How many threads [`parallel_map`] will use under this policy.
    pub fn worker_count(&self) -> usize {
        match self {
            Exec::Sequential => 1,
            Exec::Parallel { workers } => (*workers).max(1),
        }
    }
}

/// Map `f` over `items`, preserving item order in the result.
///
/// Under [`Exec::Sequential`] this is a plain loop. Under [`Exec::Parallel`]
/// it spawns scoped workers that claim indices from an atomic counter and
/// write into per-index slots, so the returned `Vec` is identical either way
/// (see the module docs for the determinism contract).
/// `f` receives the item index alongside the item so callers can derive
/// per-item RNG streams from it.
///
/// A panic in `f` propagates to the caller once all workers have stopped.
///
/// ```
/// use likelab_sim::{parallel_map, Exec, Rng};
///
/// let parent = Rng::seed_from_u64(7);
/// let items: Vec<u64> = (0..32).collect();
/// // Each item draws from its own index-split stream, so the output is
/// // the same for any worker count:
/// let draw = |i: usize, x: &u64| parent.split(i as u64).next_u64() ^ x;
/// let sequential = parallel_map(Exec::Sequential, &items, draw);
/// let parallel = parallel_map(Exec::workers(4), &items, draw);
/// assert_eq!(sequential, parallel);
/// ```
pub fn parallel_map<T, U, F>(exec: Exec, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let _map_span = likelab_obs::span::enter("parallel.map");
    // Per-job clock reads are gated on one flag check so the disabled cost
    // of instrumentation stays a single relaxed atomic load per call.
    let obs = likelab_obs::enabled();
    let start_ns = if obs { likelab_obs::now_ns() } else { 0 };
    let workers = exec.worker_count().min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                if obs {
                    timed_job(start_ns, || f(i, item)).0
                } else {
                    f(i, item)
                }
            })
            .collect();
    }

    // One slot per item; fetch_add hands each index to exactly one worker,
    // so each slot's lock is taken exactly once and never contended.
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut busy_ns = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let value = if obs {
                        let (value, spent) = timed_job(start_ns, || f(i, &items[i]));
                        busy_ns += spent;
                        value
                    } else {
                        f(i, &items[i])
                    };
                    *slots[i].lock().expect("result slot poisoned") = Some(value);
                }
                if obs {
                    // One sample per worker per map: the spread of this
                    // histogram is the pool's load imbalance, and
                    // busy / parallel.map wall time is worker utilization.
                    metrics::record_ns("parallel.worker.busy_ns", busy_ns);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index claimed exactly once")
        })
        .collect()
}

/// Run one job under the clock, recording queue delay (claim time minus
/// `map_start_ns`), execution time, and a completion count. Only called
/// when observability is enabled.
fn timed_job<U>(map_start_ns: u64, job: impl FnOnce() -> U) -> (U, u64) {
    let claimed_ns = likelab_obs::now_ns();
    metrics::record_ns(
        "parallel.job.queue_ns",
        claimed_ns.saturating_sub(map_start_ns),
    );
    let value = job();
    let exec_ns = likelab_obs::now_ns().saturating_sub(claimed_ns);
    metrics::record_ns("parallel.job.ns", exec_ns);
    metrics::counter("parallel.jobs.completed", 1);
    (value, exec_ns)
}

/// Run independent jobs, returning their results in job order.
///
/// Convenience wrapper over [`parallel_map`] for heterogeneous work that has
/// been erased into same-typed closures (e.g. report sections).
pub fn parallel_jobs<U, F>(exec: Exec, jobs: Vec<F>) -> Vec<U>
where
    U: Send,
    F: Fn() -> U + Sync,
{
    parallel_map(exec, &jobs, |_, job| job())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, x: &u64| (i as u64).wrapping_mul(31) ^ (x * x);
        let seq = parallel_map(Exec::Sequential, &items, f);
        for workers in [2, 3, 8, 64] {
            let par = parallel_map(Exec::workers(workers), &items, f);
            assert_eq!(seq, par, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        assert_eq!(parallel_map(Exec::workers(4), &none, |_, x| *x), vec![]);
        assert_eq!(
            parallel_map(Exec::workers(4), &[7u32], |_, x| x + 1),
            vec![8]
        );
    }

    #[test]
    fn exec_workers_clamps_to_sequential() {
        assert_eq!(Exec::workers(0), Exec::Sequential);
        assert_eq!(Exec::workers(1), Exec::Sequential);
        assert_eq!(Exec::workers(5), Exec::Parallel { workers: 5 });
        assert_eq!(Exec::Sequential.worker_count(), 1);
        assert_eq!(Exec::Parallel { workers: 3 }.worker_count(), 3);
    }

    #[test]
    fn parallel_jobs_preserves_job_order() {
        let jobs: Vec<Box<dyn Fn() -> usize + Sync + Send>> =
            (0..16usize).map(|i| Box::new(move || i * i) as _).collect();
        let out = parallel_jobs(Exec::workers(4), jobs);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_match_across_worker_counts() {
        // The cross-thread determinism story end to end: per-index streams
        // drawn inside parallel_map are identical for any worker count.
        let parent = crate::Rng::seed_from_u64(99);
        let items: Vec<u64> = (0..64).collect();
        let draw = |i: usize, _: &u64| {
            let mut stream = parent.split(i as u64);
            (0..8)
                .map(|_| stream.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let seq = parallel_map(Exec::Sequential, &items, draw);
        let par = parallel_map(Exec::workers(7), &items, draw);
        assert_eq!(seq, par);
    }
}
