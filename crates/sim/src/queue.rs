//! The pending-event queue.
//!
//! Events fire keyed on `(time, sequence)`: time order, with events
//! scheduled for the same instant firing in the order they were pushed.
//! The stable tie-break matters for determinism — without it, queue
//! internals would decide the order of same-instant events and reruns could
//! diverge.
//!
//! ## Hybrid layout
//!
//! The study's workload is bimodal: setup bulk-schedules millions of events
//! (the organic like plan, farm deliveries, poll cadences) before the first
//! pop, then the event loop adds a trickle of reschedules while draining.
//! A binary heap pays `O(log n)` of cache-hostile sifting per operation on
//! the bulk; a sorted array cannot absorb the trickle. So the queue keeps
//! both:
//!
//! - everything pushed before the first pop lands in an unsorted `bulk`
//!   vector, sorted **once** (descending, so popping from the back yields
//!   ascending order) when draining starts;
//! - everything pushed after that goes to a small heap;
//! - `pop` takes whichever front has the smaller `(time, seq)` key.
//!
//! Bulk entries always carry smaller sequence numbers than heap entries
//! (they were pushed earlier), so comparing the full `(time, seq)` key
//! reproduces the exact pop order a single heap would have produced — the
//! layout is an invisible optimization, which the unit tests pin.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of pending events with FIFO tie-breaking.
pub struct EventQueue<E> {
    /// Events pushed before draining began, unsorted. Sorted into `run` on
    /// the first pop; empty forever after.
    bulk: Vec<Entry<E>>,
    /// The sorted bulk, *descending* by `(time, seq)` so the back is the
    /// earliest event and popping is `Vec::pop`.
    run: Vec<Entry<E>>,
    /// Events pushed after draining began.
    heap: BinaryHeap<Entry<E>>,
    /// True once the first pop happened; routes pushes to `heap`.
    draining: bool,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            bulk: Vec::new(),
            run: Vec::new(),
            heap: BinaryHeap::new(),
            draining: false,
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { at, seq, event };
        if self.draining {
            self.heap.push(entry);
        } else {
            self.bulk.push(entry);
        }
    }

    /// Sort the pre-drain bulk into the consumable run. Runs at most once
    /// per queue lifetime (plus once more after a checkpoint restore): after
    /// draining starts, pushes go to the heap and `bulk` stays empty.
    fn flush_bulk(&mut self) {
        if !self.bulk.is_empty() {
            debug_assert!(self.run.is_empty(), "bulk refilled after the flush");
            self.bulk
                .sort_unstable_by_key(|e| (std::cmp::Reverse(e.at), std::cmp::Reverse(e.seq)));
            self.run = std::mem::take(&mut self.bulk);
        }
    }

    /// Remove and return the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_if(|_, _| true)
    }

    /// Remove and return the earliest event only when `pred` approves it;
    /// leave the queue untouched (and return `None`) otherwise.
    ///
    /// This is the coalescing primitive: the event loop peeks at the front
    /// through `pred` and keeps draining while consecutive events belong to
    /// the same batchable run, stopping — without consuming — at the first
    /// event of a different kind. Pop order is identical to calling
    /// [`pop`][Self::pop] under the same schedule.
    pub fn pop_if(&mut self, pred: impl FnOnce(SimTime, &E) -> bool) -> Option<(SimTime, E)> {
        self.flush_bulk();
        self.draining = true;
        let run_key = self.run.last().map(|e| (e.at, e.seq));
        let heap_key = self.heap.peek().map(|e| (e.at, e.seq));
        let from_run = match (run_key, heap_key) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            // Equal keys are impossible (seq is unique); the earlier-pushed
            // entry — always the run's, its seq predates every heap seq —
            // wins equal times via the smaller seq.
            (Some(r), Some(h)) => r < h,
        };
        let e = if from_run {
            // lint:allow(unwrap-in-library): run_key was Some, so the run is non-empty
            let front = self.run.last().expect("checked non-empty");
            if !pred(front.at, &front.event) {
                return None;
            }
            self.run.pop().expect("checked non-empty")
        } else {
            // lint:allow(unwrap-in-library): heap_key was Some, so the heap is non-empty
            let front = self.heap.peek().expect("checked non-empty");
            if !pred(front.at, &front.event) {
                return None;
            }
            self.heap.pop().expect("checked non-empty")
        };
        Some((e.at, e.event))
    }

    /// The firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // The unsorted-bulk scan only happens before the first pop; after
        // that `bulk` is empty and this is two O(1) peeks.
        let bulk = self.bulk.iter().map(|e| (e.at, e.seq)).min();
        let run = self.run.last().map(|e| (e.at, e.seq));
        let heap = self.heap.peek().map(|e| (e.at, e.seq));
        [bulk, run, heap]
            .into_iter()
            .flatten()
            .min()
            .map(|(at, _)| at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.bulk.len() + self.run.len() + self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (monotone counter).
    pub fn pushed_total(&self) -> u64 {
        self.next_seq
    }

    /// Snapshot the pending entries as `(at, seq, event)` in firing order
    /// (time, then push order). The internal sequence numbers are exposed
    /// so [`from_entries`][Self::from_entries] can rebuild a queue whose
    /// FIFO tie-breaks match the original exactly — the checkpoint/resume
    /// path depends on that.
    pub fn entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> = self
            .bulk
            .iter()
            .chain(self.run.iter())
            .chain(self.heap.iter())
            .map(|e| (e.at, e.seq, &e.event))
            .collect();
        out.sort_by_key(|(at, seq, _)| (*at, *seq));
        out
    }

    /// Rebuild a queue from a snapshot taken with
    /// [`entries`][Self::entries], preserving the original sequence
    /// numbers. `next_seq` must be the original queue's
    /// [`pushed_total`][Self::pushed_total].
    ///
    /// # Panics
    /// Panics when an entry's sequence number is not below `next_seq`
    /// (which would let a future push collide with a restored entry).
    pub fn from_entries(entries: Vec<(SimTime, u64, E)>, next_seq: u64) -> Self {
        let mut bulk = Vec::with_capacity(entries.len());
        for (at, seq, event) in entries {
            assert!(
                seq < next_seq,
                "restored entry seq {seq} >= next_seq {next_seq}"
            );
            bulk.push(Entry { at, seq, event });
        }
        EventQueue {
            bulk,
            run: Vec::new(),
            heap: BinaryHeap::new(),
            draining: false,
            next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::at_day(3), "c");
        q.push(SimTime::at_day(1), "a");
        q.push(SimTime::at_day(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::at_day(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            let (at, ev) = q.pop().unwrap();
            assert_eq!(at, t);
            assert_eq!(ev, i, "same-time events must pop in push order");
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::at_day(5), 5);
        q.push(SimTime::at_day(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::at_day(2), 2);
        q.push(SimTime::at_day(4), 4);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(SimTime::at_day(3), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 5);
    }

    #[test]
    fn post_drain_pushes_interleave_with_bulk_fifo() {
        // Mixed layout: three bulk events, then draining starts, then two
        // heap events — one at the same instant as a pending bulk event.
        // Pops must follow global (time, push-order), oblivious to layout.
        let mut q = EventQueue::new();
        let t = SimTime::at_day(1);
        q.push(t, "bulk-a");
        q.push(SimTime::at_day(2), "bulk-b");
        q.push(t, "bulk-c");
        assert_eq!(q.pop().unwrap().1, "bulk-a");
        q.push(t, "late-same-t");
        q.push(SimTime::at_day(2), "late-d2");
        assert_eq!(q.peek_time(), Some(t));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop().unwrap().1, "bulk-c"); // earlier push wins the tie
        assert_eq!(q.pop().unwrap().1, "late-same-t");
        assert_eq!(q.pop().unwrap().1, "bulk-b");
        assert_eq!(q.pop().unwrap().1, "late-d2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::EPOCH + SimDuration::hours(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::EPOCH + SimDuration::hours(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn snapshot_restore_preserves_order_and_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::at_day(2);
        q.push(SimTime::at_day(3), "late");
        q.push(t, "first");
        q.push(t, "second");
        q.pop(); // consume nothing at t yet? pops "first" (earliest is t)
        let entries: Vec<(SimTime, u64, &str)> = q
            .entries()
            .into_iter()
            .map(|(at, seq, e)| (at, seq, *e))
            .collect();
        let mut restored = EventQueue::from_entries(entries, q.pushed_total());
        assert_eq!(restored.pushed_total(), q.pushed_total());
        assert_eq!(restored.pop().unwrap().1, "second");
        restored.push(t + SimDuration::hours(1), "appended");
        assert_eq!(restored.pop().unwrap().1, "appended");
        assert_eq!(restored.pop().unwrap().1, "late");
        assert!(restored.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "restored entry seq")]
    fn restore_rejects_seq_collisions() {
        let _ = EventQueue::from_entries(vec![(SimTime::EPOCH, 3u64, ())], 2);
    }

    #[test]
    fn pop_if_rejects_without_consuming() {
        let mut q = EventQueue::new();
        q.push(SimTime::at_day(1), "a");
        q.push(SimTime::at_day(2), "b");
        assert!(q.pop_if(|_, &e| e == "b").is_none());
        assert_eq!(q.len(), 2, "rejected pop_if must not consume");
        assert_eq!(q.pop_if(|at, _| at == SimTime::at_day(1)).unwrap().1, "a");
        // Post-drain pushes land in the heap; pop_if must gate that front too.
        q.push(SimTime::at_day(1) + SimDuration::hours(1), "late");
        assert!(q.pop_if(|_, &e| e == "b").is_none());
        assert_eq!(q.pop().unwrap().1, "late");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop_if(|_, _| true).is_none());
    }

    #[test]
    fn pushed_total_is_monotone() {
        let mut q = EventQueue::new();
        q.push(SimTime::EPOCH, ());
        q.push(SimTime::EPOCH, ());
        q.pop();
        assert_eq!(q.pushed_total(), 2);
        q.push(SimTime::EPOCH, ());
        assert_eq!(q.pushed_total(), 3);
    }
}
