//! The pending-event queue.
//!
//! A binary heap keyed on `(time, sequence)`: events fire in time order, and
//! events scheduled for the same instant fire in the order they were pushed.
//! The stable tie-break matters for determinism — without it, heap internals
//! would decide the order of same-instant events and reruns could diverge.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of pending events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (monotone counter).
    pub fn pushed_total(&self) -> u64 {
        self.next_seq
    }

    /// Snapshot the pending entries as `(at, seq, event)` in firing order
    /// (time, then push order). The internal sequence numbers are exposed
    /// so [`from_entries`][Self::from_entries] can rebuild a queue whose
    /// FIFO tie-breaks match the original exactly — the checkpoint/resume
    /// path depends on that.
    pub fn entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> =
            self.heap.iter().map(|e| (e.at, e.seq, &e.event)).collect();
        out.sort_by_key(|(at, seq, _)| (*at, *seq));
        out
    }

    /// Rebuild a queue from a snapshot taken with
    /// [`entries`][Self::entries], preserving the original sequence
    /// numbers. `next_seq` must be the original queue's
    /// [`pushed_total`][Self::pushed_total].
    ///
    /// # Panics
    /// Panics when an entry's sequence number is not below `next_seq`
    /// (which would let a future push collide with a restored entry).
    pub fn from_entries(entries: Vec<(SimTime, u64, E)>, next_seq: u64) -> Self {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for (at, seq, event) in entries {
            assert!(
                seq < next_seq,
                "restored entry seq {seq} >= next_seq {next_seq}"
            );
            heap.push(Entry { at, seq, event });
        }
        EventQueue { heap, next_seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::at_day(3), "c");
        q.push(SimTime::at_day(1), "a");
        q.push(SimTime::at_day(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::at_day(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            let (at, ev) = q.pop().unwrap();
            assert_eq!(at, t);
            assert_eq!(ev, i, "same-time events must pop in push order");
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::at_day(5), 5);
        q.push(SimTime::at_day(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::at_day(2), 2);
        q.push(SimTime::at_day(4), 4);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(SimTime::at_day(3), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 5);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::EPOCH + SimDuration::hours(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::EPOCH + SimDuration::hours(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn snapshot_restore_preserves_order_and_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::at_day(2);
        q.push(SimTime::at_day(3), "late");
        q.push(t, "first");
        q.push(t, "second");
        q.pop(); // consume nothing at t yet? pops "first" (earliest is t)
        let entries: Vec<(SimTime, u64, &str)> = q
            .entries()
            .into_iter()
            .map(|(at, seq, e)| (at, seq, *e))
            .collect();
        let mut restored = EventQueue::from_entries(entries, q.pushed_total());
        assert_eq!(restored.pushed_total(), q.pushed_total());
        assert_eq!(restored.pop().unwrap().1, "second");
        restored.push(t + SimDuration::hours(1), "appended");
        assert_eq!(restored.pop().unwrap().1, "appended");
        assert_eq!(restored.pop().unwrap().1, "late");
        assert!(restored.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "restored entry seq")]
    fn restore_rejects_seq_collisions() {
        let _ = EventQueue::from_entries(vec![(SimTime::EPOCH, 3u64, ())], 2);
    }

    #[test]
    fn pushed_total_is_monotone() {
        let mut q = EventQueue::new();
        q.push(SimTime::EPOCH, ());
        q.push(SimTime::EPOCH, ());
        q.pop();
        assert_eq!(q.pushed_total(), 2);
        q.push(SimTime::EPOCH, ());
        assert_eq!(q.pushed_total(), 3);
    }
}
