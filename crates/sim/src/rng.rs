//! Deterministic random number generation.
//!
//! Every stochastic decision in the laboratory flows through [`Rng`], an
//! in-crate implementation of xoshiro256** seeded through SplitMix64. We
//! implement it here rather than depending on an external generator because
//! reproducibility is a first-class requirement: a `(seed, scale)` pair must
//! regenerate a bit-identical study forever, and external crates explicitly
//! reserve the right to change their streams between releases.
//!
//! Independent subsystems get *forked* child generators via [`Rng::fork`], so
//! adding randomness consumption to one subsystem does not perturb any other
//! subsystem's stream (a classic source of accidental non-reproducibility).

/// SplitMix64 step; used for seeding and for hashing fork labels.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, used to derive fork sub-seeds from names.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derive a stream seed for `(master, stream)` — e.g. one study run within a
/// seed sweep, or one shard of a partitioned workload.
///
/// Pure function of its inputs: sweep run `k` of master seed `m` sees the same
/// stream whether runs execute sequentially, in parallel, or in any subset.
/// Two SplitMix64 rounds separate master and stream contributions so that
/// `(m, k)` and `(m ^ x, k ^ x)` do not collide the way a plain XOR would.
pub fn derive_stream_seed(master: u64, stream: u64) -> u64 {
    let mut sm = master;
    let hashed_master = splitmix64(&mut sm);
    let mut mixed = hashed_master ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
    splitmix64(&mut mixed)
}

/// A deterministic xoshiro256** generator.
///
/// Streams are stable across releases of this crate (golden tests pin them).
/// Serializable so checkpoint/resume can freeze a stream mid-run and
/// continue it bit-exactly.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64, as the
    /// xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child generator for the named subsystem.
    ///
    /// The child stream depends on this generator's *current* state and the
    /// label, so distinct labels (or distinct parents) give uncorrelated
    /// streams. Forking advances the parent by one draw.
    pub fn fork(&mut self, label: &str) -> Rng {
        let mixed = self.next_u64() ^ fnv1a(label);
        Rng::seed_from_u64(mixed)
    }

    /// Derive an independent child generator for stream `index` *without*
    /// advancing this generator.
    ///
    /// This is the parallel-safe sibling of [`Rng::fork`]: because the parent
    /// state is only read, any number of workers can derive their streams from
    /// a shared snapshot, and the set of child streams depends only on the
    /// parent state and the indices — never on the order in which workers run.
    /// That property is what makes parallel runs bit-identical to sequential
    /// ones.
    ///
    /// ```
    /// use likelab_sim::Rng;
    ///
    /// let parent = Rng::seed_from_u64(42);
    /// // Splitting is read-only and a pure function of (state, index):
    /// let a = parent.split(0).next_u64();
    /// let b = parent.split(1).next_u64();
    /// assert_ne!(a, b, "distinct indices give distinct streams");
    /// assert_eq!(a, parent.split(0).next_u64(), "same index, same stream");
    /// ```
    pub fn split(&self, index: u64) -> Rng {
        // Hash the full 256-bit state down to 64 bits, then mix in the stream
        // index with an odd multiplier so neighbouring indices land far apart.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47);
        let folded = splitmix64(&mut sm);
        let mut mixed = folded ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
        Rng::seed_from_u64(splitmix64(&mut mixed))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)`, with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// A uniform `usize` index in `[0, len)`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.f64()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// `k` distinct elements sampled uniformly without replacement
    /// (selection sampling; preserves slice order in the result).
    ///
    /// Returns all elements when `k >= slice.len()`.
    pub fn sample_without_replacement<T: Clone>(&mut self, slice: &[T], k: usize) -> Vec<T> {
        let n = slice.len();
        if k >= n {
            return slice.to_vec();
        }
        let mut out = Vec::with_capacity(k);
        let mut remaining = n;
        let mut needed = k;
        for item in slice {
            if needed == 0 {
                break;
            }
            // P(select) = needed / remaining — classic Algorithm S.
            if self.below(remaining as u64) < needed as u64 {
                out.push(item.clone());
                needed -= 1;
            }
            remaining -= 1;
        }
        out
    }

    /// An index drawn according to non-negative `weights`.
    ///
    /// # Panics
    /// Panics when `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index over no weights");
        let mut total = 0.0;
        for (i, w) in weights.iter().enumerate() {
            assert!(w.is_finite() && *w >= 0.0, "weight {i} is invalid: {w}");
            total += w;
        }
        assert!(total > 0.0, "weights sum to zero");
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights
            .iter()
            .rposition(|w| *w > 0.0)
            .expect("at least one positive weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs for seed 0 (Steele/Lea/Flood appendix, widely
        // cross-checked across implementations).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_stream_is_pinned() {
        // Golden values: once recorded, these must never change, or every
        // seeded experiment in the repository silently shifts.
        let mut rng = Rng::seed_from_u64(42);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                1546998764402558742,
                6990951692964543102,
                12544586762248559009,
                17057574109182124193,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_label_dependent_and_deterministic() {
        let mut parent1 = Rng::seed_from_u64(9);
        let mut parent2 = Rng::seed_from_u64(9);
        let mut c1 = parent1.fork("ads");
        let mut c2 = parent2.fork("ads");
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent3 = Rng::seed_from_u64(9);
        let mut other = parent3.fork("farms");
        let mut same_label = Rng::seed_from_u64(9).fork("ads");
        assert_ne!(other.next_u64(), same_label.next_u64());
    }

    #[test]
    fn split_does_not_advance_the_parent() {
        let parent = Rng::seed_from_u64(42);
        let mut advanced = parent.clone();
        let _ = parent.split(0);
        let _ = parent.split(1);
        // The parent state is untouched: it still produces the pinned stream.
        let mut untouched = parent.clone();
        for _ in 0..100 {
            assert_eq!(untouched.next_u64(), advanced.next_u64());
        }
    }

    #[test]
    fn split_streams_are_deterministic_and_index_dependent() {
        let parent = Rng::seed_from_u64(9);
        let mut a = parent.split(3);
        let mut b = Rng::seed_from_u64(9).split(3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = parent.split(4);
        let mut d = parent.split(3);
        let same = (0..64).filter(|_| c.next_u64() == d.next_u64()).count();
        assert_eq!(same, 0, "distinct indices must give distinct streams");
    }

    #[test]
    fn split_order_is_irrelevant() {
        let parent = Rng::seed_from_u64(123);
        let forward: Vec<u64> = (0..8).map(|i| parent.split(i).next_u64()).collect();
        let backward: Vec<u64> = (0..8).rev().map(|i| parent.split(i).next_u64()).collect();
        let reversed: Vec<u64> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn derive_stream_seed_is_pure_and_spreads() {
        assert_eq!(derive_stream_seed(42, 0), derive_stream_seed(42, 0));
        let seeds: Vec<u64> = (0..64).map(|k| derive_stream_seed(42, k)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "stream seeds must be distinct");
        assert_ne!(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
    }

    #[test]
    fn below_is_in_bounds_and_covers() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues should appear");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 100_000;
        let k = 10u64;
        let mut counts = vec![0u32; k as usize];
        for _ in 0..n {
            counts[rng.below(k) as usize] += 1;
        }
        let expected = n as f64 / k as f64;
        for c in counts {
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.1,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::seed_from_u64(0).below(0);
    }

    #[test]
    fn f64_is_in_unit_interval_with_plausible_mean() {
        let mut rng = Rng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn chance_edges_are_exact() {
        let mut rng = Rng::seed_from_u64(0);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_hits_probability() {
        let mut rng = Rng::seed_from_u64(8);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn sample_without_replacement_is_distinct_and_sized() {
        let mut rng = Rng::seed_from_u64(17);
        let pop: Vec<u32> = (0..50).collect();
        let s = rng.sample_without_replacement(&pop, 20);
        assert_eq!(s.len(), 20);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 20, "sample must be distinct");
        // Over-ask returns the whole population.
        assert_eq!(rng.sample_without_replacement(&pop, 99).len(), 50);
    }

    #[test]
    fn sample_without_replacement_is_uniform_ish() {
        let mut rng = Rng::seed_from_u64(19);
        let pop: Vec<usize> = (0..10).collect();
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            for x in rng.sample_without_replacement(&pop, 3) {
                counts[x] += 1;
            }
        }
        // Each element picked with P = 3/10.
        for c in counts {
            assert!((f64::from(c) / 20_000.0 - 0.3).abs() < 0.02);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::seed_from_u64(23);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = f64::from(counts[2]) / f64::from(counts[0]);
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio} should be ~3");
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn weighted_index_rejects_all_zero() {
        Rng::seed_from_u64(0).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn range_endpoints() {
        let mut rng = Rng::seed_from_u64(29);
        for _ in 0..1_000 {
            let v = rng.range(10, 12);
            assert!((10..12).contains(&v));
        }
    }
}
