//! Incremental, follow-capable decoding of the binary event log.
//!
//! [`crate::event::decode_binary`] is strict by design: a stream that ends
//! mid-record is a hard [`LogError::Truncated`]. That is the right contract
//! for a capture file at rest — but a *live* log being tailed while a study
//! still writes it ends mid-record almost all the time, and that is not
//! corruption, it is just data that has not arrived yet.
//!
//! [`TailReader`] is the same decoder re-expressed incrementally: bytes go
//! in via [`extend`](TailReader::extend) in whatever chunks the transport
//! produces, complete frames come out of [`next_record`](TailReader::next_record),
//! and an incomplete tail means "not yet" (`Ok(None)`) instead of an error.
//! Every *integrity* defect — bad magic, version skew, checksum mismatch, a
//! sequence number that fails to strictly increase — is still a hard error
//! the moment the offending bytes are complete enough to judge. When the
//! producer is known to be done, [`finish`](TailReader::finish) converts any
//! leftover partial frame back into the strict `Truncated` error.
//!
//! [`FollowReader`] wraps a `TailReader` around a file path and polls it:
//! each [`poll`](FollowReader::poll) reads whatever bytes were appended
//! since the last poll and returns the newly completed records. This is the
//! file-follow substrate `likelab serve` ingests from.
//!
//! A `TailReader` fed the whole stream in one `extend` and drained yields
//! exactly the records `decode_binary` yields — asserted by tests below and
//! by the chunk-split property test in the serve parity suite.

use crate::event::{fnv1a_bytes, LogError, LogHeader, LogRecord, FORMAT_VERSION, MAGIC};
use serde::Value;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Fixed bytes before the header's variable-length meta document:
/// magic (4) + version (2) + reserved (2) + meta length (4).
const HEADER_FIXED: usize = 12;

/// Fixed bytes before a frame's payload: len (4) + seq (8) + checksum (8).
const FRAME_FIXED: usize = 20;

/// Consumed-prefix size past which the internal buffer is compacted.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Incremental binary-log decoder. See the module docs.
///
/// ```
/// use likelab_sim::event::{encode_binary, LogHeader, LogRecord};
/// use likelab_sim::tail::TailReader;
/// use serde::Value;
///
/// let header = LogHeader::new(Value::Null);
/// let records = vec![LogRecord { seq: 1, payload: Value::UInt(7) }];
/// let bytes = encode_binary(&header, &records).unwrap();
///
/// // Feed the stream one byte at a time: records appear exactly when
/// // their last byte does, and an incomplete tail is never an error.
/// let mut tail = TailReader::new();
/// let mut seen = Vec::new();
/// for b in &bytes {
///     tail.extend(std::slice::from_ref(b));
///     while let Some(r) = tail.next_record().unwrap() {
///         seen.push(r);
///     }
/// }
/// assert_eq!(seen, records);
/// tail.finish().unwrap(); // no partial frame left behind
/// ```
#[derive(Debug, Default)]
pub struct TailReader {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (decoded into the header/records).
    pos: usize,
    /// Absolute stream offset of `buf[0]` (grows on compaction).
    base: u64,
    header: Option<LogHeader>,
    last_seq: Option<u64>,
    /// A decode error is sticky: once the stream is bad, it stays bad.
    failed: bool,
}

impl TailReader {
    /// A reader that has seen no bytes yet.
    pub fn new() -> Self {
        TailReader::default()
    }

    /// A reader resuming mid-stream: the header was already decoded (e.g.
    /// from a checkpoint) and the next bytes fed in are frames following
    /// sequence number `last_seq`.
    pub fn resuming(header: LogHeader, last_seq: Option<u64>, offset: u64) -> Self {
        TailReader {
            header: Some(header),
            last_seq,
            base: offset,
            ..TailReader::default()
        }
    }

    /// Append newly arrived bytes (any chunking, including one byte at a
    /// time).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The decoded header, once its bytes have fully arrived.
    pub fn header(&self) -> Option<&LogHeader> {
        self.header.as_ref()
    }

    /// The last decoded record's sequence number.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// Absolute stream offset of the first undecoded byte.
    pub fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// Bytes buffered but not yet decodable (a partial frame, or nothing).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Absolute offset helper for error reporting.
    fn abs(&self, rel: usize) -> u64 {
        self.base + rel as u64
    }

    /// `n` bytes at buffer offset `at`, or `None` while they have not
    /// arrived yet.
    fn peek(&self, at: usize, n: usize) -> Option<&[u8]> {
        self.buf.get(at..at + n)
    }

    fn u32_at(&self, at: usize) -> Option<u32> {
        match self.peek(at, 4) {
            Some(&[a, b, c, d]) => Some(u32::from_le_bytes([a, b, c, d])),
            _ => None,
        }
    }

    fn u64_at(&self, at: usize) -> Option<u64> {
        match self.peek(at, 8) {
            Some(&[a, b, c, d, e, f, g, h]) => Some(u64::from_le_bytes([a, b, c, d, e, f, g, h])),
            _ => None,
        }
    }

    /// Drop the consumed prefix once it is large enough to matter.
    fn compact(&mut self) {
        if self.pos >= COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.base += self.pos as u64;
            self.pos = 0;
        }
    }

    /// Try to decode the header from the buffered bytes. `Ok(true)` once
    /// the header is available (now or previously), `Ok(false)` while more
    /// bytes are needed.
    fn try_header(&mut self) -> Result<bool, LogError> {
        if self.header.is_some() {
            return Ok(true);
        }
        // Judge the magic as soon as its bytes exist — a stream that is
        // not a log should fail on the first 4 bytes, not wait forever.
        let have = self.buf.len().min(4);
        // lint:allow(panic-reachable-from-serve): have <= buf.len() and have <= MAGIC.len() by min()
        if self.buf[..have] != MAGIC[..have] {
            return Err(LogError::BadMagic);
        }
        let version = match self.peek(4, 2) {
            Some(&[a, b]) => u16::from_le_bytes([a, b]),
            _ => return Ok(false),
        };
        if version != FORMAT_VERSION {
            return Err(LogError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let Some(meta_len) = self.u32_at(8) else {
            return Ok(false);
        };
        let meta_len = meta_len as usize;
        let Some(meta_bytes) = self.peek(HEADER_FIXED, meta_len) else {
            return Ok(false);
        };
        let meta_text = std::str::from_utf8(meta_bytes).map_err(|e| LogError::Corrupt {
            offset: self.abs(HEADER_FIXED),
            reason: format!("header not utf-8: {e}"),
        })?;
        let meta: Value = serde_json::from_str(meta_text).map_err(|e| LogError::Corrupt {
            offset: self.abs(HEADER_FIXED),
            reason: format!("header not json: {e}"),
        })?;
        self.header = Some(LogHeader { version, meta });
        self.pos = HEADER_FIXED + meta_len;
        Ok(true)
    }

    /// Decode the next complete record, if its bytes have all arrived.
    ///
    /// `Ok(None)` means the buffer holds no complete frame *yet* — feed
    /// more bytes and call again. Integrity errors (magic, version,
    /// checksum, JSON, sequence ordering) are hard and sticky: after an
    /// `Err`, every later call returns the stream-corrupt error again.
    pub fn next_record(&mut self) -> Result<Option<LogRecord>, LogError> {
        if self.failed {
            return Err(LogError::Corrupt {
                offset: self.offset(),
                reason: "stream already failed an earlier decode".into(),
            });
        }
        match self.next_record_inner() {
            Err(e) => {
                self.failed = true;
                Err(e)
            }
            ok => ok,
        }
    }

    fn next_record_inner(&mut self) -> Result<Option<LogRecord>, LogError> {
        if !self.try_header()? {
            return Ok(None);
        }
        let at = self.pos;
        let Some(len) = self.u32_at(at) else {
            return Ok(None);
        };
        let len = len as usize;
        let (Some(seq), Some(sum)) = (self.u64_at(at + 4), self.u64_at(at + 12)) else {
            return Ok(None);
        };
        let Some(body) = self.peek(at + FRAME_FIXED, len) else {
            return Ok(None);
        };
        if fnv1a_bytes(body) != sum {
            return Err(LogError::Corrupt {
                offset: self.abs(at),
                reason: format!("checksum mismatch on record seq {seq}"),
            });
        }
        if let Some(prev) = self.last_seq {
            if seq <= prev {
                return Err(LogError::NonMonotoneSeq { prev, next: seq });
            }
        }
        let text = std::str::from_utf8(body).map_err(|e| LogError::Corrupt {
            offset: self.abs(at),
            reason: format!("payload not utf-8: {e}"),
        })?;
        let payload: Value = serde_json::from_str(text).map_err(|e| LogError::Corrupt {
            offset: self.abs(at),
            reason: format!("payload not json: {e}"),
        })?;
        self.pos = at + FRAME_FIXED + len;
        self.last_seq = Some(seq);
        self.compact();
        Ok(Some(LogRecord { seq, payload }))
    }

    /// All records currently decodable, in order.
    pub fn drain(&mut self) -> Result<Vec<LogRecord>, LogError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }

    /// Declare the stream complete. A leftover partial frame (or a stream
    /// too short for its own header) becomes the strict
    /// [`LogError::Truncated`] that [`crate::event::decode_binary`] would
    /// have reported.
    pub fn finish(&self) -> Result<(), LogError> {
        if self.pending_bytes() > 0 || self.header.is_none() {
            return Err(LogError::Truncated {
                offset: self.offset(),
            });
        }
        Ok(())
    }
}

/// Follow a binary log file as it grows: each [`poll`](FollowReader::poll)
/// reads the bytes appended since the last poll and returns the records
/// they complete.
///
/// The file may not exist yet when the reader is constructed (the producer
/// creates it on its first write); polls before that simply return no
/// records. Reads are positional (`seek` + `read_to_end`), so the producer
/// and the follower never share a file cursor.
#[derive(Debug)]
pub struct FollowReader {
    path: PathBuf,
    read_bytes: u64,
    tail: TailReader,
}

impl FollowReader {
    /// Follow `path` from its beginning.
    pub fn open(path: &Path) -> Self {
        FollowReader {
            path: path.to_path_buf(),
            read_bytes: 0,
            tail: TailReader::new(),
        }
    }

    /// Read any newly appended bytes and return the records they complete.
    /// A missing file is "nothing yet", not an error.
    ///
    /// # Errors
    /// Besides decode failures, returns [`LogError::ShrunkSource`] when the
    /// file is smaller than the bytes already consumed — the producer
    /// truncated or rotated it, consumed history is gone, and silently
    /// seeking past EOF would stall the follower forever at a stale offset.
    /// The error repeats on every poll until the file grows back past the
    /// committed offset (i.e. it is not masked by a later, unrelated
    /// append); recovery means re-opening the source from scratch.
    pub fn poll(&mut self) -> Result<Vec<LogRecord>, LogError> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(LogError::Io(e.to_string())),
        };
        let len = file.metadata()?.len();
        if len < self.read_bytes {
            return Err(LogError::ShrunkSource {
                read_bytes: self.read_bytes,
                len,
            });
        }
        file.seek(SeekFrom::Start(self.read_bytes))?;
        let mut fresh = Vec::new();
        file.read_to_end(&mut fresh)?;
        self.read_bytes += fresh.len() as u64;
        self.tail.extend(&fresh);
        self.tail.drain()
    }

    /// The wrapped incremental decoder (header, last seq, pending bytes).
    pub fn tail(&self) -> &TailReader {
        &self.tail
    }

    /// Total file bytes consumed so far.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Declare the producer done; fails on a leftover partial frame.
    pub fn finish(&self) -> Result<(), LogError> {
        self.tail.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{decode_binary, encode_binary};

    fn sample() -> (LogHeader, Vec<LogRecord>) {
        let header = LogHeader::new(Value::Object(vec![(
            "kind".into(),
            Value::Str("tail-test".into()),
        )]));
        let records = (1..=20)
            .map(|i| LogRecord {
                seq: i * 3,
                payload: Value::Object(vec![("n".into(), Value::UInt(i))]),
            })
            .collect();
        (header, records)
    }

    #[test]
    fn whole_stream_matches_strict_decoder() {
        let (header, records) = sample();
        let bytes = encode_binary(&header, &records).unwrap();
        let strict = decode_binary(&bytes).unwrap();
        let mut tail = TailReader::new();
        tail.extend(&bytes);
        let drained = tail.drain().unwrap();
        assert_eq!(tail.header(), Some(&strict.0));
        assert_eq!(drained, strict.1);
        tail.finish().unwrap();
    }

    #[test]
    fn byte_at_a_time_yields_every_record_exactly_once() {
        let (header, records) = sample();
        let bytes = encode_binary(&header, &records).unwrap();
        let mut tail = TailReader::new();
        let mut seen = Vec::new();
        for b in &bytes {
            tail.extend(std::slice::from_ref(b));
            seen.extend(tail.drain().unwrap());
        }
        assert_eq!(seen, records);
        assert_eq!(tail.last_seq(), Some(60));
        assert_eq!(tail.pending_bytes(), 0);
    }

    #[test]
    fn partial_tail_is_not_an_error_until_finish() {
        let (header, records) = sample();
        let bytes = encode_binary(&header, &records).unwrap();
        let cut = bytes.len() - 3;
        let mut tail = TailReader::new();
        tail.extend(&bytes[..cut]);
        let drained = tail.drain().unwrap();
        assert_eq!(drained.len(), records.len() - 1, "last record incomplete");
        assert!(matches!(tail.finish(), Err(LogError::Truncated { .. })));
        // The missing bytes arrive: the record completes, finish passes.
        tail.extend(&bytes[cut..]);
        assert_eq!(tail.drain().unwrap(), records[records.len() - 1..]);
        tail.finish().unwrap();
    }

    #[test]
    fn bad_magic_fails_on_the_first_bytes() {
        let mut tail = TailReader::new();
        tail.extend(b"LX");
        assert_eq!(tail.next_record(), Err(LogError::BadMagic));
    }

    #[test]
    fn version_skew_is_rejected() {
        let (header, _) = sample();
        let mut bytes = encode_binary(&header, &[]).unwrap();
        bytes[4] = 99;
        let mut tail = TailReader::new();
        tail.extend(&bytes);
        assert!(matches!(
            tail.next_record(),
            Err(LogError::VersionMismatch { found: 99, .. })
        ));
    }

    #[test]
    fn checksum_corruption_is_hard_and_sticky() {
        let (header, records) = sample();
        let mut bytes = encode_binary(&header, &records).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut tail = TailReader::new();
        tail.extend(&bytes);
        let mut err = None;
        loop {
            match tail.next_record() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(LogError::Corrupt { .. })));
        // Sticky: the reader refuses to continue past corruption.
        assert!(tail.next_record().is_err());
    }

    #[test]
    fn non_monotone_seq_is_rejected_mid_stream() {
        let (header, _) = sample();
        let records = vec![
            LogRecord {
                seq: 5,
                payload: Value::Null,
            },
            LogRecord {
                seq: 5,
                payload: Value::Null,
            },
        ];
        let bytes = encode_binary(&header, &records).unwrap();
        let mut tail = TailReader::new();
        tail.extend(&bytes);
        assert_eq!(tail.next_record(), Ok(Some(records[0].clone())));
        assert_eq!(
            tail.next_record(),
            Err(LogError::NonMonotoneSeq { prev: 5, next: 5 })
        );
    }

    #[test]
    fn resuming_reader_enforces_seq_continuity() {
        let (header, _) = sample();
        let mut tail = TailReader::resuming(header.clone(), Some(10), 0);
        // Frames only — a resumed stream has no header bytes.
        let stale = encode_binary(
            &header,
            &[LogRecord {
                seq: 10,
                payload: Value::Null,
            }],
        )
        .unwrap();
        let head_len = encode_binary(&header, &[]).unwrap().len();
        tail.extend(&stale[head_len..]);
        assert_eq!(
            tail.next_record(),
            Err(LogError::NonMonotoneSeq { prev: 10, next: 10 })
        );
    }

    #[test]
    fn compaction_preserves_absolute_offsets() {
        let (header, _) = sample();
        let big = LogRecord {
            seq: 1,
            payload: Value::Str("x".repeat(COMPACT_THRESHOLD)),
        };
        let tail_rec = LogRecord {
            seq: 2,
            payload: Value::Null,
        };
        let bytes = encode_binary(&header, &[big.clone(), tail_rec.clone()]).unwrap();
        let mut tail = TailReader::new();
        tail.extend(&bytes);
        assert_eq!(tail.next_record(), Ok(Some(big)));
        assert_eq!(tail.next_record(), Ok(Some(tail_rec)));
        assert_eq!(tail.offset(), bytes.len() as u64);
        tail.finish().unwrap();
    }

    #[test]
    fn follow_reader_sees_appends_across_polls() {
        let dir = std::env::temp_dir().join(format!("likelab-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("follow.log");
        let _ = std::fs::remove_file(&path);

        let mut follow = FollowReader::open(&path);
        assert_eq!(follow.poll().unwrap(), Vec::new(), "missing file is empty");

        let (header, records) = sample();
        let bytes = encode_binary(&header, &records).unwrap();
        let split = bytes.len() / 2;
        std::fs::write(&path, &bytes[..split]).unwrap();
        let first = follow.poll().unwrap();
        assert!(first.len() < records.len());

        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        std::io::Write::write_all(&mut f, &bytes[split..]).unwrap();
        drop(f);
        let mut all = first;
        all.extend(follow.poll().unwrap());
        assert_eq!(all, records);
        follow.finish().unwrap();
        assert_eq!(follow.read_bytes(), bytes.len() as u64);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn follow_reader_detects_mid_follow_truncation() {
        // Regression: a followed file shrinking below the committed offset
        // used to seek past EOF, read zero bytes, and stall silently at the
        // stale offset forever. It must surface ShrunkSource instead.
        let dir = std::env::temp_dir().join(format!("likelab-shrink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("follow.log");
        let _ = std::fs::remove_file(&path);

        let (header, records) = sample();
        let bytes = encode_binary(&header, &records).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        let mut follow = FollowReader::open(&path);
        assert_eq!(follow.poll().unwrap(), records);
        let consumed = follow.read_bytes();

        // Producer rotates: the file is truncated under the follower.
        let short = bytes.len() / 2;
        std::fs::write(&path, &bytes[..short]).unwrap();
        assert_eq!(
            follow.poll(),
            Err(LogError::ShrunkSource {
                read_bytes: consumed,
                len: short as u64,
            })
        );
        // Sticky while the file stays short — no silent stall, no records.
        assert!(matches!(follow.poll(), Err(LogError::ShrunkSource { .. })));
        assert_eq!(follow.read_bytes(), consumed, "offset never rewinds");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
