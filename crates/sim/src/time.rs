//! Simulated time.
//!
//! The study runs on a virtual clock that starts at the moment the campaigns
//! are launched (the paper launched all campaigns on March 12, 2014). Time is
//! kept as whole seconds since that epoch in a [`SimTime`], and spans between
//! instants are [`SimDuration`]s. Both are plain `u64`s underneath, so clock
//! arithmetic is exact and the event queue ordering is total.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An instant on the simulation clock, in whole seconds since the study epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span between two [`SimTime`]s, in whole seconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One second.
    pub const SECOND: SimDuration = SimDuration(1);
    /// One minute.
    pub const MINUTE: SimDuration = SimDuration(60);
    /// One hour — the crawler granularity unit.
    pub const HOUR: SimDuration = SimDuration(3_600);
    /// One day — the budget-pacing unit.
    pub const DAY: SimDuration = SimDuration(86_400);
    /// One week — the crawler's stop-after-quiet threshold.
    pub const WEEK: SimDuration = SimDuration(7 * 86_400);

    /// A span of `n` seconds.
    pub const fn secs(n: u64) -> Self {
        SimDuration(n)
    }

    /// A span of `n` minutes.
    pub const fn minutes(n: u64) -> Self {
        SimDuration(n * 60)
    }

    /// A span of `n` hours.
    pub const fn hours(n: u64) -> Self {
        SimDuration(n * 3_600)
    }

    /// A span of `n` days.
    pub const fn days(n: u64) -> Self {
        SimDuration(n * 86_400)
    }

    /// The span as whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The span as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// The span as fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale the span by a non-negative factor, rounding to whole seconds.
    ///
    /// # Panics
    /// Panics when `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl SimTime {
    /// The study epoch (campaign launch).
    pub const EPOCH: SimTime = SimTime(0);

    /// The instant `n` seconds after the epoch.
    pub const fn from_secs(n: u64) -> Self {
        SimTime(n)
    }

    /// The instant at the start of day `n` (day 0 is launch day).
    pub const fn at_day(n: u64) -> Self {
        SimTime(n * 86_400)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Which whole day this instant falls in (day 0 is launch day).
    pub const fn day(self) -> u64 {
        self.0 / 86_400
    }

    /// Fractional days since the epoch; this is the x-axis of Figure 2.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// Span since an earlier instant.
    ///
    /// # Panics
    /// Panics when `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "since() called with a later instant: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Span since an earlier instant, zero when `earlier` is in the future.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.0 / 86_400;
        let rem = self.0 % 86_400;
        let (h, m, s) = (rem / 3_600, (rem % 3_600) / 60, rem % 60);
        write!(f, "d{day}+{h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / 86_400;
        let rem = self.0 % 86_400;
        let (h, m, s) = (rem / 3_600, (rem % 3_600) / 60, rem % 60);
        if d > 0 {
            write!(f, "{d}d{h:02}h{m:02}m{s:02}s")
        } else if h > 0 {
            write!(f, "{h}h{m:02}m{s:02}s")
        } else if m > 0 {
            write!(f, "{m}m{s:02}s")
        } else {
            write!(f, "{s}s")
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_arithmetic_is_exact() {
        let t = SimTime::at_day(3) + SimDuration::hours(5);
        assert_eq!(t.day(), 3);
        assert_eq!(t.as_secs(), 3 * 86_400 + 5 * 3_600);
        assert_eq!((t + SimDuration::hours(19)).day(), 4);
    }

    #[test]
    fn since_measures_spans() {
        let a = SimTime::at_day(1);
        let b = SimTime::at_day(2) + SimDuration::minutes(30);
        assert_eq!(b.since(a), SimDuration::secs(86_400 + 1_800));
        assert_eq!(b - a, b.since(a));
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn since_panics_on_inverted_order() {
        let _ = SimTime::EPOCH.since(SimTime::at_day(1));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::EPOCH.saturating_since(SimTime::at_day(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_units_compose() {
        assert_eq!(SimDuration::days(1), SimDuration::hours(24));
        assert_eq!(SimDuration::hours(1), SimDuration::minutes(60));
        assert_eq!(SimDuration::minutes(1), SimDuration::secs(60));
        assert_eq!(SimDuration::WEEK, SimDuration::days(7));
    }

    #[test]
    fn duration_division_counts_periods() {
        assert_eq!(SimDuration::days(15) / SimDuration::hours(2), 180);
        assert_eq!(
            SimDuration::days(1) % SimDuration::hours(7),
            SimDuration::hours(3)
        );
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::secs(10).mul_f64(0.25), SimDuration::secs(3));
        assert_eq!(SimDuration::DAY.mul_f64(0.5), SimDuration::hours(12));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::DAY.mul_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::at_day(2) + SimDuration::hours(4) + SimDuration::minutes(5);
        assert_eq!(t.to_string(), "d2+04:05:00");
        assert_eq!(SimDuration::secs(42).to_string(), "42s");
        assert_eq!(SimDuration::minutes(3).to_string(), "3m00s");
        assert_eq!(SimDuration::hours(2).to_string(), "2h00m00s");
        assert_eq!(
            (SimDuration::days(1) + SimDuration::secs(1)).to_string(),
            "1d00h00m01s"
        );
    }

    #[test]
    fn min_max_pick_endpoints() {
        let a = SimTime::at_day(1);
        let b = SimTime::at_day(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn fractional_day_axis() {
        let t = SimTime::at_day(1) + SimDuration::hours(12);
        assert!((t.as_days_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::hours(36).as_days_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::minutes(90).as_hours_f64() - 1.5).abs() < 1e-12);
    }
}
