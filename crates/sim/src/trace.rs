//! Lightweight observability for simulation runs.
//!
//! [`Trace`] collects named monotone counters and a bounded journal of
//! timestamped notes. The study logger uses it to keep a record equivalent to
//! the paper's monitoring notes ("campaign X remained inactive", "stopped
//! monitoring page Y after a quiet week") without any I/O in the hot path.

use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A timestamped journal entry.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Note {
    /// When the note was recorded (simulation clock).
    pub at: SimTime,
    /// Free-form message.
    pub text: String,
}

/// Counters plus a bounded journal.
///
/// Serializable so checkpoint/resume can carry the journal across a
/// process restart without losing or reordering entries.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    counters: BTreeMap<String, u64>,
    notes: Vec<Note>,
    note_cap: usize,
    dropped_notes: u64,
}

impl Trace {
    /// A trace that keeps at most `note_cap` journal entries (0 = unbounded).
    pub fn with_capacity(note_cap: usize) -> Self {
        Trace {
            note_cap,
            ..Trace::default()
        }
    }

    /// Increment the named counter by `delta`.
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Record a journal note at simulation time `at`.
    pub fn note(&mut self, at: SimTime, text: impl Into<String>) {
        if self.note_cap > 0 && self.notes.len() >= self.note_cap {
            self.dropped_notes += 1;
            return;
        }
        self.notes.push(Note {
            at,
            text: text.into(),
        });
    }

    /// The journal, in recording order.
    pub fn notes(&self) -> &[Note] {
        &self.notes
    }

    /// Notes dropped because the cap was hit.
    pub fn dropped_notes(&self) -> u64 {
        self.dropped_notes
    }

    /// Render the journal and counters as a human-readable block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            let _ = writeln!(out, "[{}] {}", n.at, n.text);
        }
        if self.dropped_notes > 0 {
            let _ = writeln!(
                out,
                "... {} notes dropped (cap reached)",
                self.dropped_notes
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "-- counters --");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "{k}: {v}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn counters_accumulate() {
        let mut t = Trace::default();
        t.count("likes.observed", 3);
        t.count("likes.observed", 4);
        t.count("crawl.failures", 1);
        assert_eq!(t.counter("likes.observed"), 7);
        assert_eq!(t.counter("crawl.failures"), 1);
        assert_eq!(t.counter("never"), 0);
        let all: Vec<_> = t.counters().collect();
        assert_eq!(all, vec![("crawl.failures", 1), ("likes.observed", 7)]);
    }

    #[test]
    fn notes_record_in_order() {
        let mut t = Trace::default();
        t.note(SimTime::EPOCH, "launch");
        t.note(SimTime::EPOCH + SimDuration::days(2), "burst seen");
        assert_eq!(t.notes().len(), 2);
        assert_eq!(t.notes()[1].text, "burst seen");
    }

    #[test]
    fn note_cap_drops_and_counts() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.note(SimTime::at_day(i), format!("n{i}"));
        }
        assert_eq!(t.notes().len(), 2);
        assert_eq!(t.dropped_notes(), 3);
        assert!(t.render().contains("3 notes dropped"));
    }

    #[test]
    fn render_contains_everything() {
        let mut t = Trace::default();
        t.note(SimTime::at_day(1), "hello");
        t.count("x", 9);
        let r = t.render();
        assert!(r.contains("d1+00:00:00"));
        assert!(r.contains("hello"));
        assert!(r.contains("x: 9"));
    }
}
