//! Property-based tests of the simulation kernel's invariants.

use likelab_sim::dist::{exponential, log_normal_median, poisson, Categorical, Zipf};
use likelab_sim::{EventQueue, Rng, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// The same seed always regenerates the same stream — the foundation of
    /// every reproducibility claim in the repository.
    #[test]
    fn rng_streams_are_seed_deterministic(seed in any::<u64>()) {
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// `below(b)` is always strictly in range.
    #[test]
    fn below_is_in_range(seed in any::<u64>(), bound in 1u64..=1_000_000) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// `f64()` stays in the half-open unit interval.
    #[test]
    fn unit_floats_are_in_range(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = rng.f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    /// Shuffling permutes: the multiset of elements is preserved.
    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut v in prop::collection::vec(0u32..100, 0..50)) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut expected = v.clone();
        rng.shuffle(&mut v);
        v.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(v, expected);
    }

    /// Sampling without replacement yields distinct elements of the right
    /// count, all drawn from the population.
    #[test]
    fn sampling_without_replacement_is_sound(
        seed in any::<u64>(),
        n in 0usize..60,
        k in 0usize..80,
    ) {
        let population: Vec<u32> = (0..n as u32).collect();
        let mut rng = Rng::seed_from_u64(seed);
        let sample = rng.sample_without_replacement(&population, k);
        prop_assert_eq!(sample.len(), k.min(n));
        let mut d = sample.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), sample.len(), "distinct");
        prop_assert!(sample.iter().all(|x| (*x as usize) < n));
    }

    /// Fork with the same label from the same parent state matches; a
    /// different label diverges.
    #[test]
    fn forks_are_label_stable(seed in any::<u64>()) {
        let mut p1 = Rng::seed_from_u64(seed);
        let mut p2 = Rng::seed_from_u64(seed);
        let mut a = p1.fork("x");
        let mut b = p2.fork("x");
        prop_assert_eq!(a.next_u64(), b.next_u64());
        let mut p3 = Rng::seed_from_u64(seed);
        let mut c = p3.fork("y");
        let mut d = Rng::seed_from_u64(seed).fork("x");
        prop_assert_ne!(c.next_u64(), d.next_u64());
    }

    /// The event queue pops in non-decreasing time order, whatever the push
    /// order, and same-time events keep FIFO order.
    #[test]
    fn queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 0..100)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt, "time order");
                if t == lt {
                    prop_assert!(i > li, "FIFO on ties");
                }
            }
            last = Some((t, i));
        }
    }

    /// Time arithmetic round-trips.
    #[test]
    fn time_add_sub_roundtrip(base in 0u64..1_000_000_000, d in 0u64..1_000_000) {
        let t = SimTime::from_secs(base);
        let dur = SimDuration::secs(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur).since(t), dur);
        prop_assert_eq!(t.saturating_since(t + dur), SimDuration::ZERO);
    }

    /// Day bucketing is consistent with seconds arithmetic.
    #[test]
    fn day_bucketing(secs in 0u64..10_000_000) {
        let t = SimTime::from_secs(secs);
        prop_assert_eq!(t.day(), secs / 86_400);
        prop_assert!(t.as_days_f64() >= t.day() as f64);
        prop_assert!(t.as_days_f64() < (t.day() + 1) as f64);
    }

    /// Samplers never produce out-of-domain values.
    #[test]
    fn distributions_stay_in_domain(seed in any::<u64>(), n in 1usize..500, s in 0.0f64..2.5) {
        let mut rng = Rng::seed_from_u64(seed);
        let zipf = Zipf::new(n, s);
        for _ in 0..32 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
        prop_assert!(exponential(&mut rng, 0.5 + s) >= 0.0);
        prop_assert!(log_normal_median(&mut rng, 34.0, 1.0) > 0.0);
        let p = poisson(&mut rng, s * 10.0);
        prop_assert!(p < 1_000_000);
    }

    /// Categorical sampling only returns configured outcomes, and never an
    /// outcome with zero weight.
    #[test]
    fn categorical_respects_support(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let pairs: Vec<(usize, f64)> = weights.iter().copied().enumerate().collect();
        let cat = Categorical::new(&pairs);
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            let o = cat.sample(&mut rng);
            prop_assert!(o < weights.len());
            prop_assert!(weights[o] > 0.0, "zero-weight outcome drawn");
        }
    }
}
