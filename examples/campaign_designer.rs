//! Campaign designer: a what-if tool over the ad platform — given a budget,
//! duration, and target market, predict how many likes a page-like campaign
//! buys and what the likers will look like. This is the decision the
//! paper's intro motivates (businesses buying reach), run against the
//! calibrated market model.
//!
//! ```text
//! cargo run --release --example campaign_designer [daily_budget_usd] [days]
//! ```

use likelab::osn::ads::{plan_campaign, AdCampaignSpec};
use likelab::osn::population::{synthesize, PopulationConfig};
use likelab::osn::{AdMarket, Country, Gender, OsnWorld, PageCategory, Targeting};
use likelab::sim::Rng;

fn main() {
    let mut args = std::env::args().skip(1);
    let daily_usd: f64 = args.next().map(|s| s.parse().unwrap()).unwrap_or(6.0);
    let days: u64 = args.next().map(|s| s.parse().unwrap()).unwrap_or(15);

    const SCALE: f64 = 0.3;
    let mut rng = Rng::seed_from_u64(99);
    let mut world = OsnWorld::new();
    let pop = synthesize(
        &mut world,
        &PopulationConfig::default().scaled(SCALE),
        &mut rng.fork("pop"),
    );
    let market = AdMarket::default();

    println!(
        "campaign designer: ${daily_usd}/day for {days} days (totals scaled back to paper scale)\n"
    );
    println!(
        "{:12} {:>8} {:>12} {:>10} {:>8} {:>8}",
        "Market", "likes", "$/like", "13-24yo%", "male%", "in-geo%"
    );

    let markets: Vec<(&str, Targeting)> = vec![
        ("USA", Targeting::country(Country::Usa)),
        ("France", Targeting::country(Country::France)),
        ("India", Targeting::country(Country::India)),
        ("Egypt", Targeting::country(Country::Egypt)),
        ("Worldwide", Targeting::worldwide()),
        (
            "USA f 13-24",
            Targeting {
                countries: Some(vec![Country::Usa]),
                gender: Some(Gender::Female),
                age_range: Some((13, 24)),
            },
        ),
    ];

    for (name, targeting) in markets {
        let page = world.create_page(
            format!("designer-{name}"),
            "",
            None,
            PageCategory::Honeypot,
            pop.launch,
        );
        let spec = AdCampaignSpec {
            page,
            targeting: targeting.clone(),
            daily_budget_cents: daily_usd * 100.0 * SCALE,
            duration_days: days,
            leakage: 0.02,
        };
        let plan = plan_campaign(&world, &pop, &market, &spec, pop.launch, &mut rng);
        let scaled_likes = plan.len() as f64 / SCALE;
        let total_spend = daily_usd * days as f64;
        let young = plan
            .iter()
            .filter(|p| world.account(p.user).profile.age <= 24)
            .count() as f64
            / plan.len().max(1) as f64;
        let male = plan
            .iter()
            .filter(|p| world.account(p.user).profile.gender == Gender::Male)
            .count() as f64
            / plan.len().max(1) as f64;
        let in_geo = match &targeting.countries {
            Some(cs) => {
                plan.iter()
                    .filter(|p| cs.contains(&world.account(p.user).profile.country))
                    .count() as f64
                    / plan.len().max(1) as f64
            }
            None => 1.0,
        };
        println!(
            "{:12} {:>8.0} {:>12.2} {:>9.0}% {:>7.0}% {:>7.0}%",
            name,
            scaled_likes,
            total_spend / scaled_likes.max(1.0),
            young * 100.0,
            male * 100.0,
            in_geo * 100.0,
        );
    }

    println!(
        "\nNote the paper's trap: the cheap markets deliver volume, but the likers are\n\
         the click-prone segment — hundreds of page likes each, no engagement value.\n\
         Run `cargo run --release --example detection_eval` to see their footprint."
    );
}
