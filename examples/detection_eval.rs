//! Detection evaluation: run the honeypot study, then act as the platform
//! operator — score every account with the combined detector, run the
//! lockstep detector, and measure both against ground truth.
//!
//! Reproduces the paper's closing argument quantitatively: bot-burst farm
//! accounts are easy to catch; BoostLikes-style stealth accounts score
//! near-organic and survive.
//!
//! ```text
//! cargo run --release --example detection_eval [scale] [seed]
//! ```

use likelab::detect::{
    confusion_at, detect, extract, roc, score, BurstConfig, LockstepConfig, PositiveClass,
    ScorerWeights,
};
use likelab::graph::UserId;
use likelab::osn::ActorClass;
use likelab::sim::SimDuration;
use likelab::{run_study, StudyConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().map(|s| s.parse().unwrap()).unwrap_or(0.15);
    let seed: u64 = args.next().map(|s| s.parse().unwrap()).unwrap_or(42);

    eprintln!("running study (seed={seed}, scale={scale})...");
    let outcome = run_study(&StudyConfig::paper(seed, scale));
    let world = &outcome.world;
    let now = outcome.launch + SimDuration::days(45);

    // --- combined per-account scorer ---------------------------------------
    eprintln!("scoring {} accounts...", world.account_count());
    let burst_cfg = BurstConfig::default();
    let weights = ScorerWeights::default();
    let scored: Vec<(UserId, f64)> = world
        .user_ids()
        .map(|u| (u, score(&extract(world, u, now, &burst_cfg), &weights)))
        .collect();

    let r = roc(world, &scored, PositiveClass::FarmOnly);
    println!("combined scorer vs farm accounts: AUC = {:.3}", r.auc);
    let c = confusion_at(world, &scored, 0.5, PositiveClass::FarmOnly);
    println!(
        "at threshold 0.5: precision {:.2}, recall {:.2}, F1 {:.2}, FPR {:.4}",
        c.precision(),
        c.recall(),
        c.f1(),
        c.fpr()
    );

    // --- the stealth gap ----------------------------------------------------
    let mean_score = |pred: &dyn Fn(ActorClass) -> bool| -> f64 {
        let xs: Vec<f64> = scored
            .iter()
            .filter(|(u, _)| pred(world.account(*u).class))
            .map(|(_, s)| *s)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let bot = mean_score(&|c| matches!(c, ActorClass::Bot(_)));
    let stealth = mean_score(&|c| matches!(c, ActorClass::StealthSybil(_)));
    let organic = mean_score(&|c| c == ActorClass::Organic);
    let clickprone = mean_score(&|c| c == ActorClass::ClickProne);
    println!("\nmean detector score by ground-truth class:");
    println!("  bot farm accounts:     {bot:.3}");
    println!("  click-prone accounts:  {clickprone:.3}");
    println!("  stealth sybils:        {stealth:.3}   <- the paper's hard case");
    println!("  organic users:         {organic:.3}");
    println!(
        "stealth gap: stealth sybils score {:.1}x closer to organic than bots do",
        ((bot - organic) / (stealth - organic).max(1e-6)).max(1.0)
    );

    // --- recall per farm class ------------------------------------------------
    let recall_of = |pred: &dyn Fn(ActorClass) -> bool| -> f64 {
        let (mut tp, mut total) = (0usize, 0usize);
        for (u, s) in &scored {
            if pred(world.account(*u).class) {
                total += 1;
                if *s >= 0.5 {
                    tp += 1;
                }
            }
        }
        tp as f64 / total.max(1) as f64
    };
    println!(
        "\nrecall at 0.5: bots {:.2}, stealth sybils {:.2}",
        recall_of(&|c| matches!(c, ActorClass::Bot(_))),
        recall_of(&|c| matches!(c, ActorClass::StealthSybil(_)))
    );

    // --- lockstep detector ------------------------------------------------------
    eprintln!(
        "\nrunning lockstep detection over {} likes...",
        world.likes().len()
    );
    let report = detect(world, &LockstepConfig::default());
    let flagged = report.flagged();
    let farm_flagged = flagged
        .iter()
        .filter(|u| world.account(**u).class.is_farm())
        .count();
    println!(
        "lockstep: {} clusters, {} accounts flagged, {} of them farm accounts ({:.0}% precision)",
        report.clusters.len(),
        flagged.len(),
        farm_flagged,
        farm_flagged as f64 / flagged.len().max(1) as f64 * 100.0
    );
    if let Some(biggest) = report.clusters.first() {
        let farms_in = biggest
            .iter()
            .filter(|u| world.account(**u).class.is_farm())
            .count();
        println!(
            "largest cluster: {} accounts, {farms_in} of them farm-operated",
            biggest.len()
        );
    }
}
