//! Engagement audit: what the bought likes are actually worth.
//!
//! Runs the honeypot study, then acts as each page's owner for a month of
//! posting (30 posts) and measures who reacts. The paper's economic framing
//! — a like is valued at $3.60–$214.81 because it predicts engagement — is
//! tested directly: farm audiences are a void, and even legitimate-ad
//! audiences full of click-prone users barely respond.
//!
//! ```text
//! cargo run --release --example engagement_audit [scale]
//! ```

use likelab::osn::{simulate_engagement, ActorClass, EngagementModel};
use likelab::sim::Rng;
use likelab::{run_study, StudyConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().unwrap())
        .unwrap_or(0.15);
    eprintln!("running study (scale {scale})...");
    let mut outcome = run_study(&StudyConfig::paper(42, scale));
    let model = EngagementModel::default();
    let mut rng = Rng::seed_from_u64(99);

    // A control page with genuinely interested organic fans, same size as
    // the median campaign.
    let control_page = {
        use likelab::osn::PageCategory;
        use likelab::sim::SimTime;
        let world = &mut outcome.world;
        let page = world.create_page(
            "control-organic-fans",
            "",
            None,
            PageCategory::Background,
            SimTime::at_day(500),
        );
        let fans: Vec<_> = outcome
            .population
            .organic
            .iter()
            .take(400)
            .copied()
            .collect();
        for f in fans {
            world.record_like(f, page, SimTime::at_day(500));
        }
        page
    };
    println!(
        "\n{:24} {:>7} {:>13} {:>11} {:>13}",
        "Page", "fans", "impressions", "reactions", "eng. rate"
    );
    let control = simulate_engagement(&outcome.world, control_page, 30, &model, &mut rng);
    println!(
        "{:24} {:>7} {:>13} {:>11} {:>12.2}%",
        "control (organic fans)",
        control.fans,
        control.impressions,
        control.reactions,
        control.engagement_rate() * 100.0
    );
    for (i, c) in outcome.dataset.campaigns.iter().enumerate() {
        if c.inactive {
            continue;
        }
        let r = simulate_engagement(&outcome.world, outcome.honeypots[i], 30, &model, &mut rng);
        println!(
            "{:24} {:>7} {:>13} {:>11} {:>12.2}%",
            c.spec.label,
            r.fans,
            r.impressions,
            r.reactions,
            r.engagement_rate() * 100.0
        );
    }

    // Class composition of one farm audience, for the why.
    let sf_idx = outcome
        .dataset
        .campaigns
        .iter()
        .position(|c| c.spec.label == "SF-ALL")
        .unwrap();
    let sf_fans = outcome.world.visible_likers(outcome.honeypots[sf_idx]);
    let bots = sf_fans
        .iter()
        .filter(|u| matches!(outcome.world.account(**u).class, ActorClass::Bot(_)))
        .count();
    println!(
        "\nSF-ALL audience: {}/{} bot accounts — the page posts into a void.",
        bots,
        sf_fans.len()
    );
    println!(
        "The paper's citations [7][20] observed exactly this: pages stuffed with\n\
         bought likes see engagement collapse, and feed ranking then buries them."
    );
}
