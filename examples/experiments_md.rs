//! Regenerates EXPERIMENTS.md: runs the study and emits the
//! paper-vs-measured record for every table and figure, in Markdown.
//!
//! ```text
//! cargo run --release --example experiments_md [scale] [seed] > EXPERIMENTS.md
//! ```

use likelab::analysis::{
    demographics::table2,
    geo::figure1,
    pagelikes::figure4,
    similarity::{figure5_pages, figure5_users},
    temporal::figure2,
    Provider,
};
use likelab::core::paper;
use likelab::osn::GeoBucket;
use likelab::{checklist, run_study, StudyConfig};
use std::fmt::Write as _;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().map(|s| s.parse().unwrap()).unwrap_or(1.0);
    let seed: u64 = args.next().map(|s| s.parse().unwrap()).unwrap_or(42);
    eprintln!("generating EXPERIMENTS.md from a seed={seed}, scale={scale} run...");
    let started = std::time::Instant::now();
    let o = run_study(&StudyConfig::paper(seed, scale));
    eprintln!("study done in {:.1}s", started.elapsed().as_secs_f64());
    let mut md = String::new();
    let w = &mut md;

    let _ = writeln!(w, "# EXPERIMENTS — paper vs. measured\n");
    let _ = writeln!(
        w,
        "Source run: `run_study(&StudyConfig::paper({seed}, {scale}))` \
         (deterministic; regenerate with `cargo run --release --example \
         experiments_md {scale} {seed} > EXPERIMENTS.md`).\n"
    );
    let _ = writeln!(
        w,
        "World: {} accounts, {} pages, {} likes in the ledger at study end. \
         Paper *count* columns are scaled by {scale} where the quantity scales \
         with world size; distributions, medians, percentages, and KL values \
         compare directly. Absolute numbers are not expected to match a live \
         2014 platform — the reproduction criteria are the *shapes* (who wins, \
         by what factor), summarized by the checklist at the end.\n",
        o.world.account_count(),
        o.world.page_count(),
        o.world.likes().len(),
    );

    // ---- Table 1 ---------------------------------------------------------
    let _ = writeln!(w, "## Table 1 — campaigns and outcomes\n");
    let _ = writeln!(w, "| Campaign | Paper likes (×{scale}) | Measured | Paper terminated | Measured | Paper monitoring | Measured |");
    let _ = writeln!(w, "|---|---|---|---|---|---|---|");
    for row in paper::TABLE1 {
        let c = o.dataset.campaign(row.label).unwrap();
        let f = |v: Option<String>| v.unwrap_or_else(|| "–".into());
        let _ = writeln!(
            w,
            "| {} | {} | {} | {} | {} | {} | {} |",
            row.label,
            f(row.likes.map(|l| format!("{:.0}", l as f64 * scale))),
            f((!c.inactive).then(|| c.like_count().to_string())),
            f(row.terminated.map(|t| t.to_string())),
            f((!c.inactive).then(|| c.terminated_after_month.to_string())),
            f(row.monitoring_days.map(|d| format!("{d} d"))),
            f(c.monitoring_days.map(|d| format!("{d} d"))),
        );
    }
    let _ = writeln!(
        w,
        "\nTotals: measured {} campaign likes ({} farm / {} ads); paper {} \
         ({} / {}; note the paper's own Table 1 column sums to 4,453 farm \
         likes — a 70-like discrepancy in the original we document in \
         `likelab_core::paper`). Observed on liker profiles: {} page likes \
         and {} friendship entries (paper: 6.3 M / 1 M+ at full scale).\n",
        o.dataset.total_likes(),
        o.dataset.farm_likes(),
        o.dataset.ad_likes(),
        paper::TOTAL_CAMPAIGN_LIKES,
        paper::TOTAL_FARM_LIKES,
        paper::TOTAL_AD_LIKES,
        o.dataset.observed_page_likes(),
        o.dataset.observed_friendships(),
    );

    // ---- Figure 1 --------------------------------------------------------
    let _ = writeln!(w, "## Figure 1 — liker geolocation\n");
    let _ = writeln!(
        w,
        "| Campaign | USA% | India% | Egypt% | Turkey% | France% | Other% |"
    );
    let _ = writeln!(w, "|---|---|---|---|---|---|---|");
    for r in figure1(&o.dataset) {
        let _ = writeln!(
            w,
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |",
            r.label,
            r.share(GeoBucket::Usa) * 100.0,
            r.share(GeoBucket::India) * 100.0,
            r.share(GeoBucket::Egypt) * 100.0,
            r.share(GeoBucket::Turkey) * 100.0,
            r.share(GeoBucket::France) * 100.0,
            r.share(GeoBucket::Other) * 100.0,
        );
    }
    let fig1 = figure1(&o.dataset);
    let india = fig1
        .iter()
        .find(|r| r.label == "FB-ALL")
        .unwrap()
        .share(GeoBucket::India);
    let _ = writeln!(
        w,
        "\nPaper headlines: FB-ALL 96% India (measured {:.0}%); targeted FB \
         campaigns 87–99.8% in-country (measured: see rows); SocialFormula \
         Turkish regardless of targeting (measured SF-USA {:.0}% Turkey).\n",
        india * 100.0,
        fig1.iter()
            .find(|r| r.label == "SF-USA")
            .unwrap()
            .share(GeoBucket::Turkey)
            * 100.0,
    );

    // ---- Table 2 ---------------------------------------------------------
    let _ = writeln!(w, "## Table 2 — gender, age, KL divergence\n");
    let _ = writeln!(
        w,
        "| Campaign | Paper %F/%M | Measured | Paper KL | Measured KL |"
    );
    let _ = writeln!(w, "|---|---|---|---|---|");
    let t2 = table2(&o.dataset);
    for row in paper::TABLE2 {
        let Some(m) = t2.iter().find(|r| r.label == row.label) else {
            continue;
        };
        let _ = writeln!(
            w,
            "| {} | {:.0}/{:.0} | {:.0}/{:.0} | {} | {} |",
            row.label,
            row.female_pct,
            row.male_pct,
            m.female_pct,
            m.male_pct,
            row.kl
                .map(|k| format!("{k:.2}"))
                .unwrap_or_else(|| "–".into()),
            m.kl.map(|k| format!("{k:.2}"))
                .unwrap_or_else(|| "–".into()),
        );
    }
    let _ = writeln!(
        w,
        "\nShape held: FB-IND/EGY/ALL diverge hard (young + male), \
         SocialFormula mirrors the global population (KL ≈ 0.04 in the paper).\n"
    );

    // ---- Figure 2 --------------------------------------------------------
    let _ = writeln!(w, "## Figure 2 — cumulative likes over 15 days\n");
    let _ = writeln!(
        w,
        "| Campaign | Panel | Total | Peak-2h share | Days to 90% | Max daily share |"
    );
    let _ = writeln!(w, "|---|---|---|---|---|---|");
    for s in figure2(&o.dataset, 15) {
        let _ = writeln!(
            w,
            "| {} | {} | {} | {:.0}% | {:.1} | {:.0}% |",
            s.label,
            if s.platform_ads {
                "2(a) ads"
            } else {
                "2(b) farms"
            },
            s.total(),
            s.peak_2h_share * 100.0,
            s.days_to_90pct,
            s.max_daily_share() * 100.0,
        );
    }
    let _ = writeln!(
        w,
        "\nPaper: SF/AL/MS deliver in ≤2 h bursts (AL: 700+ likes in 4 hours \
         on day 2, then silence); BL-USA climbs steadily, 'comparable to that \
         observed in the Facebook Ads campaigns'. Both behaviours reproduce.\n"
    );

    // ---- Table 3 / Figure 3 -----------------------------------------------
    let _ = writeln!(w, "## Table 3 — likers and friendships\n");
    let _ = writeln!(w, "| Provider | Paper likers (×{scale}) | Measured | Paper public-FL% | Measured | Paper med. friends | Measured | Paper #edges (×{scale}) | Measured | Paper #2-hop (×{scale}) | Measured |");
    let _ = writeln!(w, "|---|---|---|---|---|---|---|---|---|---|---|");
    for row in paper::TABLE3 {
        let m = o
            .report
            .table3
            .iter()
            .find(|r| r.provider.to_string() == row.provider)
            .unwrap();
        let _ = writeln!(
            w,
            "| {} | {:.0} | {} | {:.1} | {:.1} | {:.0} | {:.0} | {:.1} | {} | {:.1} | {} |",
            row.provider,
            row.likers as f64 * scale,
            m.likers,
            row.public_pct,
            m.public_pct(),
            row.friends_median,
            m.friends.median,
            row.friendships as f64 * scale,
            m.friendships_between_likers,
            row.two_hop as f64 * scale,
            m.two_hop_between_likers,
        );
    }
    let obs = likelab::analysis::ObservedSocial::build(&o.dataset);
    let _ = writeln!(w, "\n### Figure 3 — induced friendship-graph structure\n");
    let _ = writeln!(
        w,
        "| Provider | Members | Singletons | Pairs | Triplets | ≥4 comps | Giant % |"
    );
    let _ = writeln!(w, "|---|---|---|---|---|---|---|");
    for p in Provider::ALL {
        let c = obs.group_census(p);
        let _ = writeln!(
            w,
            "| {} | {} | {} | {} | {} | {} | {:.0}% |",
            p,
            c.members,
            c.singletons,
            c.pairs,
            c.triplets,
            c.larger,
            c.giant_fraction() * 100.0,
        );
    }
    let _ = writeln!(
        w,
        "\nPaper's reading reproduces: dense interconnected BoostLikes blob; \
         SocialFormula pairs/triplets; AL↔MS cross edges ({} measured) point \
         to the shared operator. DOT exports of the drawing itself: \
         `target/likelab/figure3_*.dot` from `examples/full_study.rs`.\n",
        obs.cross_group_pairs(Provider::AuthenticLikes, Provider::MammothSocials)
            .len(),
    );

    // ---- Figure 4 ---------------------------------------------------------
    let _ = writeln!(w, "## Figure 4 — page-like count distributions\n");
    let _ = writeln!(
        w,
        "| Curve | Paper median | Measured median | n (public like lists) |"
    );
    let _ = writeln!(w, "|---|---|---|---|");
    for c in figure4(&o.dataset) {
        let paper_median: String = match c.label.as_str() {
            "Facebook" => format!("{}", paper::BASELINE_MEDIAN_LIKES),
            "BL-USA" => format!("{}", paper::BL_USA_MEDIAN_LIKES),
            l if l.starts_with("FB-") => format!(
                "{:.0}–{:.0}",
                paper::FB_CAMPAIGN_MEDIAN_LIKES.0,
                paper::FB_CAMPAIGN_MEDIAN_LIKES.1
            ),
            "BL-ALL" | "MS-ALL" => "–".into(),
            _ => format!(
                "{:.0}–{:.0}",
                paper::FARM_CAMPAIGN_MEDIAN_LIKES.0,
                paper::FARM_CAMPAIGN_MEDIAN_LIKES.1
            ),
        };
        let m = c.median();
        let _ = writeln!(
            w,
            "| {} | {} | {} | {} |",
            c.label,
            paper_median,
            if m.is_nan() {
                "–".into()
            } else {
                format!("{m:.0}")
            },
            c.cdf.len(),
        );
    }
    let _ = writeln!(
        w,
        "\nThe paper's central contrast holds: honeypot likers like 1–2 orders \
         of magnitude more pages than the directory baseline, except BL-USA \
         ('keeping a small count of likes per user').\n"
    );

    // ---- Figure 5 ----------------------------------------------------------
    let _ = writeln!(w, "## Figure 5 — Jaccard similarity (×100)\n");
    let pages = figure5_pages(&o.dataset);
    let users = figure5_users(&o.dataset);
    let _ = writeln!(w, "Hot pairs (the paper's fingerprint cells):\n");
    let _ = writeln!(w, "| Pair | Matrix | Measured | Paper's reading |");
    let _ = writeln!(w, "|---|---|---|---|");
    let rows = [
        (
            "SF-ALL ↔ SF-USA",
            users.get("SF-ALL", "SF-USA"),
            "users",
            "same accounts reused across campaigns",
        ),
        (
            "AL-USA ↔ MS-USA",
            users.get("AL-USA", "MS-USA"),
            "users",
            "same operator runs both farms",
        ),
        (
            "FB-IND ↔ FB-ALL",
            pages.get("FB-IND", "FB-ALL"),
            "pages",
            "FB-IND/EGY/ALL resemble each other",
        ),
        (
            "FB-IND ↔ FB-EGY",
            pages.get("FB-IND", "FB-EGY"),
            "pages",
            "ditto",
        ),
        (
            "SF-ALL ↔ SF-USA",
            pages.get("SF-ALL", "SF-USA"),
            "pages",
            "shared accounts ⇒ shared histories",
        ),
        (
            "AL-USA ↔ MS-USA",
            pages.get("AL-USA", "MS-USA"),
            "pages",
            "shared operator job pool",
        ),
        (
            "SF-ALL ↔ AL-USA",
            pages.get("SF-ALL", "AL-USA"),
            "pages",
            "distinct operators stay dim",
        ),
        (
            "FB-IND ↔ AL-USA",
            pages.get("FB-IND", "AL-USA"),
            "pages",
            "ads vs. farms stay dim",
        ),
    ];
    for (pair, v, matrix, reading) in rows {
        let _ = writeln!(w, "| {pair} | {matrix} | {v:.1} | {reading} |");
    }
    let _ = writeln!(
        w,
        "\nFull matrices: `report.figure5_pages` / `report.figure5_users` \
         (also printed by `cargo bench --bench fig5`). Inactive campaigns \
         (BL-ALL, MS-ALL) have all-zero rows, as in the paper.\n"
    );

    // ---- §5 ---------------------------------------------------------------
    let _ = writeln!(w, "## §5 — termination follow-up (month later)\n");
    let _ = writeln!(w, "| Provider | Paper | Measured | Measured rate |");
    let _ = writeln!(w, "|---|---|---|---|");
    let t = &o.report.termination;
    for (p, paper_n) in [
        (Provider::Facebook, paper::TERMINATED_FACEBOOK),
        (Provider::BoostLikes, paper::TERMINATED_BOOSTLIKES),
        (Provider::SocialFormula, paper::TERMINATED_SOCIALFORMULA),
        (Provider::AuthenticLikes, paper::TERMINATED_AUTHENTICLIKES),
        (Provider::MammothSocials, paper::TERMINATED_MAMMOTHSOCIALS),
    ] {
        let likers = o
            .report
            .table3
            .iter()
            .find(|r| r.provider == p)
            .map(|r| r.likers)
            .unwrap_or(0);
        let _ = writeln!(
            w,
            "| {} | {} | {} | {:.1}% |",
            p,
            paper_n,
            t.provider(p),
            t.rate(p, likers.max(1)) * 100.0,
        );
    }
    let _ = writeln!(
        w,
        "\nOrdering reproduces: the bot farms bleed accounts, the stealth farm \
         barely loses any ('bot-like patterns are actually easy to detect').\n"
    );

    // ---- checklist ----------------------------------------------------------
    let _ = writeln!(w, "## Reproduction shape checklist\n");
    let checks = checklist(&o.report);
    let _ = writeln!(w, "| Artifact | Criterion | Paper | Measured | Holds |");
    let _ = writeln!(w, "|---|---|---|---|---|");
    for c in &checks {
        let _ = writeln!(
            w,
            "| {} | {} | {} | {} | {} |",
            c.artifact,
            c.criterion,
            c.paper,
            c.measured,
            if c.pass { "yes" } else { "**NO**" },
        );
    }
    let passed = checks.iter().filter(|c| c.pass).count();
    let _ = writeln!(w, "\n**{passed}/{} criteria hold.**\n", checks.len());
    let _ = writeln!(
        w,
        "## Ablations\n\nA1 (burst width vs. detectability), A2 (stealth \
         connectivity vs. Figure 3 structure), A3 (privacy rate vs. \
         observed edges), and A4 (auction sharpness vs. the FB-ALL India \
         collapse) print from `cargo bench -p likelab-bench --bench \
         ablation`; the detection extension prints from `--bench detect`. \
         See DESIGN.md §3 for the index.\n"
    );

    let _ = writeln!(
        w,
        "## Reproducing these numbers\n\n\
         Every command below runs against the current CLI (`cargo install \
         --path .` installs `likelab`).\n\n\
         ```bash\n\
         # This exact document (writes to stdout):\n\
         cargo run --release --example experiments_md {scale} {seed} > EXPERIMENTS.md\n\n\
         # The same run, rendered as aligned tables instead of Markdown:\n\
         likelab run --seed {seed} --scale {scale}\n\n\
         # The 23-criterion shape checklist (exit code 1 if any fails):\n\
         likelab checklist --seed {seed} --scale {scale}\n\n\
         # Error bars: 8 independent seeds at 10% scale, with a JSON report:\n\
         likelab sweep --seeds 8 --scales 0.1 --out sweep.json\n\n\
         # JSON / DOT / SVG artifacts for every table and figure:\n\
         likelab export out/ --seed {seed} --scale {scale}\n\
         ```\n\n\
         Where the time goes (see OBSERVABILITY.md for the schemas):\n\n\
         ```bash\n\
         # Per-phase timing tables + span tree after the run:\n\
         likelab run --seed {seed} --scale {scale} --timing\n\n\
         # Machine-readable metrics and span records from a sweep:\n\
         likelab sweep --seeds 8 --scales 0.1 --timing \\\n\
         \x20    --metrics-out metrics.json --trace-out trace.json\n\n\
         # Instrumentation overhead budget (<5% enabled, ~0 disabled):\n\
         cargo bench -p likelab-bench --bench obs\n\
         ```\n\n\
         Event sourcing — capture a run, replay it, survive a crash (see\n\
         DESIGN.md §4c):\n\n\
         ```bash\n\
         # Stream every accepted mutation to a checksummed binary log:\n\
         likelab run --seed {seed} --scale {scale} --log-out study.log\n\n\
         # Greppable JSONL instead (buffered, written atomically at the end):\n\
         likelab run --seed {seed} --scale {scale} \\\n\
         \x20    --log-out study.jsonl --log-format jsonl\n\n\
         # Rebuild the full report from the log alone - byte-identical to\n\
         # the original run at any LIKELAB_THREADS:\n\
         likelab replay study.log\n\n\
         # Same bytes + exit code as `likelab checklist`:\n\
         likelab replay study.log --checklist\n\n\
         # Incremental replay: recompute only campaigns touched past the cutoff:\n\
         likelab replay study.log --from-seq 80000 --cache cache/\n\n\
         # Periodic atomic checkpoints, then resume a killed run; the output\n\
         # is byte-identical to a run that never crashed:\n\
         likelab run --seed {seed} --scale {scale} \\\n\
         \x20    --checkpoint-dir ckpt/ --checkpoint-every 20000\n\
         likelab run --resume ckpt/\n\
         ```\n\n\
         Live scoring - tail the log and answer fraud queries while the\n\
         producer is still writing (protocol and semantics in SERVING.md):\n\n\
         ```bash\n\
         # Producer in one terminal:\n\
         likelab run --seed {seed} --scale {scale} --log-out live/world.log\n\n\
         # Consumer in another - line-delimited JSON over stdin/stdout:\n\
         printf '%s\\n' \\\n\
         \x20    '{{\"v\":1,\"id\":1,\"op\":\"status\"}}' \\\n\
         \x20    '{{\"v\":1,\"id\":2,\"op\":\"score\",\"user\":7}}' \\\n\
         \x20    '{{\"v\":1,\"id\":3,\"op\":\"shutdown\"}}' \\\n\
         \x20  | likelab serve live/world.log --follow\n\n\
         # Or over TCP, for many concurrent clients:\n\
         likelab serve study.log --tcp 127.0.0.1:7070\n\n\
         # Ingest throughput, ingest lag, and p99 query latency, with the\n\
         # online-vs-batch bitwise parity assertion at the end:\n\
         cargo bench -p likelab-bench --bench world_serve\n\
         ```\n"
    );

    println!("{md}");
}
