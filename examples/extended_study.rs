//! Extended study: the paper's "larger and more diverse honeypot
//! measurements" future work, as a demonstration that the harness is not
//! hard-wired to the 13 published campaigns.
//!
//! Defines a fifth, hypothetical farm — "InstaBoost", a *hybrid* that
//! trickles like BoostLikes but runs on cheap disposable accounts — adds
//! three extra campaigns (two InstaBoost orders and a gender-targeted ad
//! buy), and runs the full protocol over all 16 campaigns.
//!
//! ```text
//! cargo run --release --example extended_study [scale]
//! ```

use likelab::core::presets::{paper_campaigns, paper_farms};
use likelab::farms::{DeliveryStyle, FarmSpec, GeoSourcing, PoolTopology, Region};
use likelab::honeypot::{CampaignSpec, Promotion};
use likelab::osn::{Country, Gender, Targeting};
use likelab::sim::SimDuration;
use likelab::{run_study, StudyConfig};

/// A hybrid farm: human-paced delivery on bot-grade accounts.
fn instaboost() -> FarmSpec {
    FarmSpec {
        name: "InstaBoost.example".into(),
        operator: 9,
        style: DeliveryStyle::Trickle { days: 10 },
        geo: GeoSourcing::FollowOrder {
            worldwide_mix: vec![
                (Country::Indonesia, 0.4),
                (Country::Philippines, 0.35),
                (Country::Mexico, 0.25),
            ],
        },
        female_fraction: 0.35,
        age_weights: [0.3, 0.45, 0.15, 0.06, 0.03, 0.01],
        friend_median: 120.0,
        friend_sigma: 0.9,
        topology: PoolTopology::PairsAndTriplets {
            triplet_fraction: 0.2,
            isolate_fraction: 0.4,
        },
        hubs_per_segment: 10,
        hub_attach_prob: 0.03,
        friend_list_public: 0.45,
        camouflage_median: 900.0,
        camouflage_sigma: 0.6,
        job_page_fraction: 0.9,
        bursty_camouflage: true,
        max_account_age: SimDuration::days(200),
        segment_capacity: 1_500,
        delivery_fraction: (0.85, 1.0),
        scam_regions: vec![],
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().unwrap())
        .unwrap_or(0.15);

    let mut config = StudyConfig::paper(7_2014, scale);
    let ib_index = config.farms.len();
    assert_eq!(
        ib_index,
        paper_farms().len(),
        "appending after the paper's four"
    );
    config.farms.push(instaboost());
    config.campaigns = paper_campaigns();
    config.campaigns.push(CampaignSpec {
        label: "IB-ALL".into(),
        promotion: Promotion::FarmOrder {
            farm: ib_index,
            region: Region::Worldwide,
            likes: 1_000,
            price_cents: 2_499,
            advertised_duration: "10 days".into(),
        },
    });
    config.campaigns.push(CampaignSpec {
        label: "IB-USA".into(),
        promotion: Promotion::FarmOrder {
            farm: ib_index,
            region: Region::Country(Country::Usa),
            likes: 1_000,
            price_cents: 7_999,
            advertised_duration: "10 days".into(),
        },
    });
    config.campaigns.push(CampaignSpec {
        label: "FB-F24".into(),
        promotion: Promotion::PlatformAds {
            targeting: Targeting {
                countries: Some(vec![Country::Usa]),
                gender: Some(Gender::Female),
                age_range: Some((13, 24)),
            },
            daily_budget_cents: 600.0,
            duration_days: 15,
        },
    });

    eprintln!(
        "running the extended study: {} campaigns, {} farms, scale {scale}...",
        config.campaigns.len(),
        config.farms.len()
    );
    let outcome = run_study(&config);
    println!("{}", outcome.report.render());

    // The hybrid's signature: trickle tempo (evades the burst detector)
    // but bot-grade accounts (caught by volume/friend features).
    let ib = outcome
        .report
        .figure2
        .iter()
        .find(|s| s.label == "IB-USA")
        .expect("IB-USA ran");
    println!(
        "\nInstaBoost hybrid: {} likes, peak-2h {:.0}% (trickle), t90 {:.1} d",
        ib.total(),
        ib.peak_2h_share * 100.0,
        ib.days_to_90pct
    );
    let ib_median = outcome
        .report
        .figure4
        .iter()
        .find(|c| c.label == "IB-USA")
        .map(|c| c.median())
        .unwrap_or(f64::NAN);
    println!(
        "InstaBoost likers' median page-like count: {ib_median:.0} — temporal camouflage \
         without profile camouflage; the per-account features still give it away."
    );
    let gender_row = outcome
        .report
        .table2
        .iter()
        .find(|r| r.label == "FB-F24")
        .expect("FB-F24 ran");
    println!(
        "FB-F24 (female 13-24 targeting): {:.0}% female likers, {:.1}% in 13-24",
        gender_row.female_pct,
        gender_row.age_pct[0] + gender_row.age_pct[1]
    );
}
