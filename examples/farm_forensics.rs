//! Farm forensics: buy likes from each farm for a fresh honeypot page and
//! dissect what arrives — delivery tempo, account demographics, social
//! topology, camouflage volume, and the shared-operator fingerprint.
//!
//! This is the paper's §4 as an interactive lab, outside the full study
//! harness: it exercises the farm models directly through the public API.
//!
//! ```text
//! cargo run --release --example farm_forensics [scale]
//! ```

use likelab::farms::{peak_window_share, FarmOrder, FarmRoster, FarmSpec, Region};
use likelab::graph::components::ComponentCensus;
use likelab::osn::population::{synthesize, PopulationConfig};
use likelab::osn::{Country, OsnWorld, PageCategory};
use likelab::sim::{Rng, SimDuration, SimTime};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().unwrap())
        .unwrap_or(0.5);
    let mut rng = Rng::seed_from_u64(2014);
    let mut world = OsnWorld::new();
    let pop = synthesize(
        &mut world,
        &PopulationConfig::default().scaled(scale * 0.2),
        &mut rng.fork("pop"),
    );
    let mut roster = FarmRoster::new(
        vec![
            FarmSpec::boostlikes(),
            FarmSpec::socialformula(),
            FarmSpec::authenticlikes(),
            FarmSpec::mammothsocials(),
        ],
        pop.background_pages.clone(),
        scale,
        rng.fork("farms"),
    );

    println!("ordering 1000 USA likes from each farm (scale {scale})...\n");
    println!(
        "{:22} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "Farm", "likes", "peak2h", "medFriend", "medLikes", "giant%", "pairs"
    );

    let mut al_accounts = Vec::new();
    let mut ms_accounts = Vec::new();
    for (idx, name) in [
        (0usize, "BoostLikes.com"),
        (1, "SocialFormula.com"),
        (2, "AuthenticLikes.com"),
        (3, "MammothSocials.com"),
    ] {
        let page = world.create_page(
            format!("forensics-{name}"),
            "",
            None,
            PageCategory::Honeypot,
            pop.launch,
        );
        let delivery = roster.fulfill(
            &mut world,
            &FarmOrder {
                farm: idx,
                page,
                region: Region::Country(Country::Usa),
                likes: 1_000,
                placed_at: pop.launch,
            },
        );
        if delivery.scam {
            println!("{name:22} took the money and delivered nothing");
            continue;
        }
        let times: Vec<SimTime> = delivery.likes.iter().map(|l| l.at).collect();
        let peak = peak_window_share(&times, SimDuration::hours(2));
        let median = |mut v: Vec<f64>| -> f64 {
            if v.is_empty() {
                return f64::NAN;
            }
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let med_friends = median(
            delivery
                .accounts
                .iter()
                .map(|u| world.total_friend_count(*u) as f64)
                .collect(),
        );
        let med_likes = median(
            delivery
                .accounts
                .iter()
                .map(|u| world.likes().user_like_count(*u) as f64)
                .collect(),
        );
        let census = ComponentCensus::compute(world.friends(), &delivery.accounts);
        println!(
            "{:22} {:>8} {:>9.0}% {:>10.0} {:>10.0} {:>9.0}% {:>8}",
            name,
            delivery.likes.len(),
            peak * 100.0,
            med_friends,
            med_likes,
            census.giant_fraction() * 100.0,
            census.pairs,
        );
        if idx == 2 {
            al_accounts = delivery.accounts.clone();
        }
        if idx == 3 {
            ms_accounts = delivery.accounts.clone();
        }
    }

    // The shared-operator fingerprint: AL and MS hand out the same accounts.
    let al_set: std::collections::HashSet<_> = al_accounts.iter().collect();
    let shared = ms_accounts.iter().filter(|u| al_set.contains(u)).count();
    println!(
        "\nshared AL/MS accounts: {shared} of {} MS likers ({:.0}%) — the ALMS fingerprint",
        ms_accounts.len(),
        shared as f64 / ms_accounts.len().max(1) as f64 * 100.0
    );

    // Reordering from the same farm: round-robin reuse.
    let page2 = world.create_page(
        "forensics-SF-2",
        "",
        None,
        PageCategory::Honeypot,
        pop.launch,
    );
    let d1_users: std::collections::HashSet<_> = {
        let page1 = world.create_page(
            "forensics-SF-1",
            "",
            None,
            PageCategory::Honeypot,
            pop.launch,
        );
        roster
            .fulfill(
                &mut world,
                &FarmOrder {
                    farm: 1,
                    page: page1,
                    region: Region::Worldwide,
                    likes: 1_000,
                    placed_at: pop.launch,
                },
            )
            .accounts
            .into_iter()
            .collect()
    };
    let d2 = roster.fulfill(
        &mut world,
        &FarmOrder {
            farm: 1,
            page: page2,
            region: Region::Country(Country::Usa),
            likes: 1_000,
            placed_at: pop.launch + SimDuration::days(4),
        },
    );
    let reused = d2.accounts.iter().filter(|u| d1_users.contains(u)).count();
    println!(
        "SocialFormula re-order reuse: {reused} of {} accounts seen in the previous job",
        d2.accounts.len()
    );
    let turkish = d2
        .accounts
        .iter()
        .filter(|u| world.account(**u).profile.country == Country::Turkey)
        .count();
    println!(
        "SocialFormula 'USA' order actually shipped {:.0}% Turkish accounts",
        turkish as f64 / d2.accounts.len().max(1) as f64 * 100.0
    );
}
