//! The full-scale reproduction: runs the study at paper scale (1.0), prints
//! the paper-vs-measured comparison for every table and figure, and exports
//! machine-readable artifacts:
//!
//! - `target/likelab/report.json` — the complete study report;
//! - `target/likelab/dataset.json` — the raw crawled dataset;
//! - `target/likelab/figure3_direct.dot` / `figure3_twohop.dot` — Figure 3
//!   (render with `dot -Tsvg`);
//! - `target/likelab/figure{1,2a,2b,4a,4b,5a,5b}.svg` — the figures
//!   themselves, rendered.
//!
//! ```text
//! cargo run --release --example full_study [scale] [seed]
//! ```

use likelab::core::paper;
use likelab::{checklist, render_checklist, run_study, StudyConfig};
use std::fs;
use std::path::Path;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().map(|s| s.parse().unwrap()).unwrap_or(1.0);
    let seed: u64 = args.next().map(|s| s.parse().unwrap()).unwrap_or(42);

    eprintln!(
        "full study: seed={seed}, scale={scale} (this builds a {}-ish account world)",
        (60_000.0 * scale) as u64
    );
    let started = std::time::Instant::now();
    let outcome = run_study(&StudyConfig::paper(seed, scale));
    eprintln!("simulated in {:.1}s", started.elapsed().as_secs_f64());

    // --- side-by-side Table 1 -------------------------------------------
    println!("== Table 1: paper vs measured (scale {scale}) ==");
    println!(
        "{:8} {:>12} {:>12} {:>12} {:>12}",
        "Campaign", "paper likes", "measured", "paper term", "measured"
    );
    for row in paper::TABLE1 {
        let measured = outcome.dataset.campaign(row.label);
        let fmt_opt = |v: Option<usize>| v.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
        println!(
            "{:8} {:>12} {:>12} {:>12} {:>12}",
            row.label,
            fmt_opt(row.likes.map(|l| ((l as f64) * scale).round() as usize)),
            fmt_opt(measured.filter(|c| !c.inactive).map(|c| c.like_count())),
            fmt_opt(row.terminated),
            fmt_opt(
                measured
                    .filter(|c| !c.inactive)
                    .map(|c| c.terminated_after_month)
            ),
        );
    }
    println!("(paper like counts shown scaled by {scale})\n");

    println!("{}", outcome.report.render());
    println!("== Reproduction shape checklist ==");
    let checks = checklist(&outcome.report);
    println!("{}", render_checklist(&checks));
    println!(
        "{}/{} shape criteria hold",
        checks.iter().filter(|c| c.pass).count(),
        checks.len()
    );
    println!("\n== Study journal (first 30 notes) ==");
    for n in outcome.trace.notes().iter().take(30) {
        println!("[{}] {}", n.at, n.text);
    }

    // --- exports -----------------------------------------------------------
    let dir = Path::new("target/likelab");
    let write = |name: &str, content: &str| {
        let path = dir.join(name);
        if let Err(e) = fs::write(&path, content) {
            panic!("write {}: {e}", path.display());
        }
    };
    if let Err(e) = fs::create_dir_all(dir) {
        panic!("create {}: {e}", dir.display());
    }
    write(
        "report.json",
        &outcome.report.to_json().expect("serialize report"),
    );
    write(
        "dataset.json",
        &outcome.dataset.to_json().expect("serialize dataset"),
    );
    write("figure3_direct.dot", &outcome.report.figure3_direct_dot);
    write("figure3_twohop.dot", &outcome.report.figure3_twohop_dot);

    // Rendered figures.
    use likelab::analysis::svg;
    let r = &outcome.report;
    let fig2a: Vec<_> = r
        .figure2
        .iter()
        .filter(|s| s.platform_ads)
        .cloned()
        .collect();
    let fig2b: Vec<_> = r
        .figure2
        .iter()
        .filter(|s| !s.platform_ads)
        .cloned()
        .collect();
    let fig4a: Vec<_> = r
        .figure4
        .iter()
        .filter(|c| c.platform_ads || c.label == "Facebook")
        .cloned()
        .collect();
    let fig4b: Vec<_> = r
        .figure4
        .iter()
        .filter(|c| !c.platform_ads || c.label == "Facebook")
        .cloned()
        .collect();
    let renders = [
        ("figure1.svg", svg::figure1_svg(&r.figure1)),
        (
            "figure2a.svg",
            svg::figure2_svg(&fig2a, "Figure 2(a): Facebook campaigns"),
        ),
        (
            "figure2b.svg",
            svg::figure2_svg(&fig2b, "Figure 2(b): Like farms"),
        ),
        ("figure4a.svg", svg::figure4_svg(&fig4a, 10_000.0)),
        ("figure4b.svg", svg::figure4_svg(&fig4b, 10_000.0)),
        (
            "figure5a.svg",
            svg::figure5_svg(&r.figure5_pages, "Figure 5(a): page-like set similarity"),
        ),
        (
            "figure5b.svg",
            svg::figure5_svg(&r.figure5_users, "Figure 5(b): liker set similarity"),
        ),
    ];
    for (name, content) in renders {
        write(name, &content);
    }
    eprintln!("exports written to {}", dir.display());
}
