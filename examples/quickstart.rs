//! Quickstart: run the paper's 13-campaign honeypot study at a small scale
//! and print every table and figure plus the reproduction checklist.
//!
//! ```text
//! cargo run --release --example quickstart [scale] [seed]
//! ```

use likelab::{checklist, render_checklist, run_study, StudyConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.15);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(42);

    eprintln!("running the IMC'14 honeypot study: seed={seed}, scale={scale} ...");
    let started = std::time::Instant::now();
    let outcome = run_study(&StudyConfig::paper(seed, scale));
    eprintln!(
        "done in {:.1}s: {} accounts, {} likes in the world, {} campaign likes collected",
        started.elapsed().as_secs_f64(),
        outcome.world.account_count(),
        outcome.world.likes().len(),
        outcome.dataset.total_likes(),
    );

    println!("{}", outcome.report.render());
    println!("== Reproduction shape checklist ==");
    let checks = checklist(&outcome.report);
    println!("{}", render_checklist(&checks));
    let passed = checks.iter().filter(|c| c.pass).count();
    println!("{passed}/{} shape criteria hold", checks.len());
}
