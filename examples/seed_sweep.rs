//! Seed sweep: run the full honeypot study across several independent seeds
//! (and optionally several world scales), then print the per-scale
//! mean / standard deviation / 95% CI of every headline metric.
//!
//! This is the distributional view the single-run examples can't give: one
//! study is a single draw from the generative model, so claims like "farm
//! likes dwarf ad likes" or "a handful of likers get terminated" should be
//! judged against the spread over seeds, not one sample.
//!
//! ```text
//! cargo run --release --example seed_sweep [n_seeds] [scale[,scale...]]
//! ```
//!
//! Runs fan out across cores (`LIKELAB_THREADS` overrides the worker
//! count); the report is bit-identical for any worker count, because each
//! run's seed derives purely from `(master_seed, run_index)`.

use likelab::sim::Exec;
use likelab::{run_sweep, SweepConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_seeds: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(8);
    let scales: Vec<f64> = args
        .next()
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![0.05]);

    let config = SweepConfig {
        master_seed: 42,
        n_seeds,
        scales,
    };
    let exec = Exec::auto();
    eprintln!(
        "sweeping {} seeds x {} scales on {} workers...",
        config.n_seeds,
        config.scales.len(),
        exec.worker_count()
    );
    let report = run_sweep(&config, exec);
    print!("{}", report.render());

    // The derived seeds are printable, so any single run can be replayed
    // exactly with `likelab run --seed <seed> --scale <scale>`.
    for k in 0..config.n_seeds {
        eprintln!("run {k}: seed {}", config.seed_of_run(k));
    }
}
