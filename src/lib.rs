//! # likelab — a like-fraud measurement laboratory
//!
//! A full reproduction of **"Paying for Likes? Understanding Facebook Like
//! Fraud Using Honeypots"** (De Cristofaro, Friedman, Jourjon, Kaafar,
//! Shafiq — IMC 2014) as a deterministic simulation: a synthetic social
//! platform, generative models of the four like farms the paper bought
//! from, the honeypot/crawler methodology, the complete analysis pipeline
//! (Tables 1–3, Figures 1–5), and the fraud detectors the paper motivates.
//!
//! ## Quick start
//!
//! ```no_run
//! use likelab::{run_study, StudyConfig};
//!
//! // The paper's 13 campaigns at 25% world scale (seed 42).
//! let outcome = run_study(&StudyConfig::paper(42, 0.25));
//! println!("{}", outcome.report.render());
//! println!("{}", likelab::render_checklist(&likelab::checklist(&outcome.report)));
//! ```
//!
//! ## Crate map
//!
//! - [`sim`] — deterministic discrete-event kernel (clock, queue, RNG);
//! - [`graph`] — friendship/like graph substrate and generators;
//! - [`osn`] — the simulated platform (accounts, ads, reports, privacy,
//!   crawl API, anti-fraud);
//! - [`farms`] — the four like-farm behaviour models;
//! - [`honeypot`] — honeypot pages, the monitoring crawler, the dataset;
//! - [`analysis`] — every table and figure, computed from the dataset;
//! - [`detect`] — burst/lockstep/feature detectors with ROC evaluation;
//! - [`core`] — paper constants, campaign presets, the study runner, and
//!   the reproduction shape checklist.

pub use likelab_analysis as analysis;
pub use likelab_core as core;
pub use likelab_detect as detect;
pub use likelab_farms as farms;
pub use likelab_graph as graph;
pub use likelab_honeypot as honeypot;
pub use likelab_osn as osn;
pub use likelab_sim as sim;

pub use likelab_core::{
    checklist, read_study_log, render_checklist, replay_study, run_study, run_study_opts,
    run_study_with, run_sweep, serve, LogFormat, MetricAggregate, ReplayOptions, ReplayOutcome,
    RunOptions, ServeConfig, ServeOptions, ServeSummary, ServeTransport, ShapeCheck, StudyConfig,
    StudyError, StudyLog, StudyOutcome, StudyRecord, SweepConfig, SweepReport,
};
