//! `likelab` — command-line front end for the like-fraud laboratory.
//!
//! ```text
//! likelab run        [--preset P] [--scale S] [--seed N]   run the study, print the report
//! likelab checklist  [--preset P] [--scale S] [--seed N]   reproduction criteria (exit 1 on failure)
//! likelab replay LOG [--checklist] [--from-seq N --cache DIR]   rebuild report from a study log
//! likelab serve LOG  [--follow] [--tcp ADDR]       live scoring service over a study log
//! likelab export DIR [--preset P] [--scale S] [--seed N]   write JSON, DOT, and SVG artifacts
//! likelab sweep      [--seeds N] [--scales A,B]    multi-seed study sweep with aggregates
//! likelab paper                                    print the published tables
//! likelab lint       [--format human|json|sarif] [--update-baseline]   determinism & hygiene analyzer
//! ```
//!
//! `run` and `checklist` are event-sourced: `--log-out FILE` captures the
//! world log (`--log-format binary|jsonl` picks the framing),
//! `--checkpoint-every N` + `--checkpoint-dir DIR` freeze the run
//! periodically, and `--resume DIR` picks a killed run back up
//! byte-identically. `replay` reproduces the identical stdout from the log
//! alone; `serve` tails the log (even mid-run with `--follow`) and answers
//! line-delimited JSON fraud-score queries — protocol in SERVING.md.
//!
//! `run`, `checklist`, and `sweep` accept the observability flags
//! `--timing` (print a per-phase timing table), `--metrics-out FILE`, and
//! `--trace-out FILE` (write the metrics / span-trace JSON documented in
//! OBSERVABILITY.md).
//!
//! The crawl surface can be degraded with `--preset chaos` or
//! `--fault-profile NAME` (none|default|throttled|flaky|chaos); a faulted
//! `run` also prints the clean-vs-faulted robustness comparison, and
//! `--min-coverage F` turns low profile coverage into a nonzero exit.

use likelab::core::paper;
use likelab::sim::Exec;
use likelab::{
    checklist, render_checklist, replay_study, run_study, run_study_opts, run_sweep, serve,
    LogFormat, ReplayOptions, RunOptions, ServeConfig, ServeOptions, ServeTransport, StudyConfig,
    StudyError, StudyOutcome, SweepConfig,
};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

/// Which world the study runs on.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Preset {
    /// The paper's population (default scale 0.15).
    Paper,
    /// The million-account world (default scale 1.0 — ~1M accounts,
    /// 50k pages; use `--scale` to trim).
    Scale,
    /// The paper's world against a heavily faulted crawl surface
    /// (rate limits, outages, elevated noise).
    Chaos,
}

struct Opts {
    preset: Preset,
    scale: Option<f64>,
    seed: u64,
    seeds: usize,
    scales: Vec<f64>,
    out: Option<PathBuf>,
    sequential: bool,
    timing: bool,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    fault_profile: Option<String>,
    min_coverage: Option<f64>,
    log_out: Option<PathBuf>,
    log_format: LogFormat,
    follow: bool,
    tcp: Option<String>,
    chunk: Option<usize>,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    resume: bool,
    crash_after: Option<u64>,
    from_seq: Option<u64>,
    cache: Option<PathBuf>,
    checklist: bool,
    positional: Vec<String>,
}

impl Opts {
    /// Any flag that needs collected data turns instrumentation on.
    fn wants_observability(&self) -> bool {
        self.timing || self.metrics_out.is_some() || self.trace_out.is_some()
    }

    /// Effective scale: `--scale` wins; otherwise each preset's default
    /// (0.15 for `paper`, full size for `scale`).
    fn effective_scale(&self) -> f64 {
        self.scale.unwrap_or(match self.preset {
            Preset::Paper | Preset::Chaos => 0.15,
            Preset::Scale => 1.0,
        })
    }

    /// The study configuration the `run`/`checklist`/`export` commands use:
    /// the preset's config, with `--fault-profile` overriding the crawl
    /// surface when given.
    fn study_config(&self) -> Result<StudyConfig, String> {
        let base = match self.preset {
            Preset::Paper => StudyConfig::paper(self.seed, self.effective_scale()),
            Preset::Scale => StudyConfig::scale_world(self.seed, self.effective_scale()),
            Preset::Chaos => StudyConfig::chaos(self.seed, self.effective_scale()),
        };
        match &self.fault_profile {
            None => Ok(base),
            Some(name) => base.with_fault_profile(name).ok_or_else(|| {
                format!("unknown fault profile: {name} (none|default|throttled|flaky|chaos)")
            }),
        }
    }

    /// Human-readable preset name for progress messages.
    fn preset_name(&self) -> &'static str {
        match self.preset {
            Preset::Paper => "paper",
            Preset::Scale => "scale",
            Preset::Chaos => "chaos",
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        preset: Preset::Paper,
        scale: None,
        seed: 42,
        seeds: 8,
        scales: vec![0.1],
        out: None,
        sequential: false,
        timing: false,
        metrics_out: None,
        trace_out: None,
        fault_profile: None,
        min_coverage: None,
        log_out: None,
        log_format: LogFormat::default(),
        follow: false,
        tcp: None,
        chunk: None,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        crash_after: None,
        from_seq: None,
        cache: None,
        checklist: false,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--preset" => {
                let v = it.next().ok_or("--preset needs a value (paper|scale)")?;
                opts.preset = match v.as_str() {
                    "paper" => Preset::Paper,
                    "scale" => Preset::Scale,
                    "chaos" => Preset::Chaos,
                    other => return Err(format!("unknown preset: {other} (paper|scale|chaos)")),
                };
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                let s: f64 = v.parse().map_err(|_| format!("bad scale: {v}"))?;
                if s <= 0.0 {
                    return Err("scale must be positive".into());
                }
                opts.scale = Some(s);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                opts.seeds = v.parse().map_err(|_| format!("bad seed count: {v}"))?;
                if opts.seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--scales" => {
                let v = it.next().ok_or("--scales needs a comma-separated list")?;
                opts.scales = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("bad scale: {s}"))
                    })
                    .collect::<Result<_, _>>()?;
                if opts.scales.is_empty() || opts.scales.iter().any(|s| *s <= 0.0) {
                    return Err("--scales needs positive values".into());
                }
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a file path")?;
                opts.out = Some(PathBuf::from(v));
            }
            "--sequential" => opts.sequential = true,
            "--timing" => opts.timing = true,
            "--metrics-out" => {
                let v = it.next().ok_or("--metrics-out needs a file path")?;
                opts.metrics_out = Some(PathBuf::from(v));
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a file path")?;
                opts.trace_out = Some(PathBuf::from(v));
            }
            "--fault-profile" => {
                let v = it
                    .next()
                    .ok_or("--fault-profile needs a name (none|default|throttled|flaky|chaos)")?;
                opts.fault_profile = Some(v.clone());
            }
            "--log-out" => {
                let v = it.next().ok_or("--log-out needs a file path")?;
                opts.log_out = Some(PathBuf::from(v));
            }
            "--log-format" => {
                let v = it
                    .next()
                    .ok_or("--log-format needs a value (binary|jsonl)")?;
                opts.log_format = LogFormat::parse(v)?;
            }
            "--follow" => opts.follow = true,
            "--tcp" => {
                let v = it.next().ok_or("--tcp needs a host:port address")?;
                opts.tcp = Some(v.clone());
            }
            "--chunk" => {
                let v = it.next().ok_or("--chunk needs a record count")?;
                let n: usize = v.parse().map_err(|_| format!("bad chunk size: {v}"))?;
                if n == 0 {
                    return Err("--chunk must be at least 1".into());
                }
                opts.chunk = Some(n);
            }
            "--checkpoint-dir" => {
                let v = it.next().ok_or("--checkpoint-dir needs a directory path")?;
                opts.checkpoint_dir = Some(PathBuf::from(v));
            }
            "--checkpoint-every" => {
                let v = it.next().ok_or("--checkpoint-every needs an event count")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad checkpoint cadence: {v}"))?;
                if n == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
                opts.checkpoint_every = Some(n);
            }
            "--resume" => {
                let v = it.next().ok_or("--resume needs a checkpoint directory")?;
                opts.resume = true;
                opts.checkpoint_dir = Some(PathBuf::from(v));
            }
            "--crash-after-checkpoints" => {
                let v = it
                    .next()
                    .ok_or("--crash-after-checkpoints needs a checkpoint count")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad checkpoint count: {v}"))?;
                if n == 0 {
                    return Err("--crash-after-checkpoints must be at least 1".into());
                }
                opts.crash_after = Some(n);
            }
            "--from-seq" => {
                let v = it.next().ok_or("--from-seq needs a sequence number")?;
                opts.from_seq = Some(v.parse().map_err(|_| format!("bad sequence number: {v}"))?);
            }
            "--cache" => {
                let v = it.next().ok_or("--cache needs a directory path")?;
                opts.cache = Some(PathBuf::from(v));
            }
            "--checklist" => opts.checklist = true,
            "--min-coverage" => {
                let v = it.next().ok_or("--min-coverage needs a value in [0, 1]")?;
                let c: f64 = v.parse().map_err(|_| format!("bad coverage floor: {v}"))?;
                if !(0.0..=1.0).contains(&c) {
                    return Err("--min-coverage must be in [0, 1]".into());
                }
                opts.min_coverage = Some(c);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            other => opts.positional.push(other.to_string()),
        }
    }
    Ok(opts)
}

fn usage() -> &'static str {
    "likelab — honeypot like-fraud laboratory (De Cristofaro et al., IMC 2014)\n\n\
     USAGE:\n\
     \x20 likelab run        [--preset P] [--scale S] [--seed N]   run the study, print every table/figure\n\
     \x20 likelab checklist  [--preset P] [--scale S] [--seed N]   run + evaluate the 23 reproduction criteria\n\
     \x20 likelab replay LOG [--checklist] [--from-seq N --cache DIR]\n\
     \x20               rebuild the world + report from a captured study log\n\
     \x20               (byte-identical stdout; --from-seq recomputes only\n\
     \x20               campaigns touched past that sequence number)\n\
     \x20 likelab serve LOG [--follow] [--tcp HOST:PORT] [--chunk N]\n\
     \x20               live fraud-scoring service: tail the study log and\n\
     \x20               answer line-delimited JSON queries on stdin/stdout\n\
     \x20               (or --tcp); --follow keeps tailing a log still being\n\
     \x20               written; protocol + walkthrough in SERVING.md\n\
     \x20 likelab export DIR [--preset P] [--scale S] [--seed N]   run + write report.json, dataset.json, DOT, SVGs\n\
     \x20 likelab sweep [--seeds N] [--scales A,B,..] run N seeds per scale, aggregate mean/std/CI\n\
     \x20               [--seed M] [--out FILE] [--sequential]\n\
     \x20 likelab paper                               print the paper's published tables\n\
     \x20 likelab lint  [--format human|json|sarif] [--baseline FILE | --no-baseline]\n\
     \x20               [--update-baseline] [--list-rules] [--explain RULE]\n\
     \x20               determinism & hygiene analyzer (rules in LINTS.md);\n\
     \x20               uses lint-baseline.json by default, exit 1 on new findings\n\n\
     Observability (run, checklist, sweep — see OBSERVABILITY.md):\n\
     \x20 --timing             print per-phase wall-time, counters, histograms\n\
     \x20 --metrics-out FILE   write counters/histograms/span aggregates as JSON\n\
     \x20 --trace-out FILE     write the span trace as JSON\n\n\
     Event sourcing (run, checklist — see DESIGN.md):\n\
     \x20 --log-out FILE       stream every world mutation + measurement to\n\
     \x20                      a study log (replayable with `replay`)\n\
     \x20 --log-format F       log framing: binary (default; streamed,\n\
     \x20                      checksummed, tailable) or jsonl (greppable,\n\
     \x20                      written atomically at the end of the run)\n\
     \x20 --checkpoint-dir DIR log to DIR/world.log and snapshot consumer\n\
     \x20                      state to DIR/checkpoint.json\n\
     \x20 --checkpoint-every N checkpoint cadence in fired events (default 5000)\n\
     \x20 --resume DIR         resume a killed checkpointed run; the finished\n\
     \x20                      run is byte-identical to an uninterrupted one\n\
     \x20 --crash-after-checkpoints K  test hook: exit 86 after K checkpoints\n\n\
     Crawl faults (run, checklist, export — see OBSERVABILITY.md):\n\
     \x20 --fault-profile NAME override the crawl surface: none, default,\n\
     \x20                      throttled, flaky, chaos\n\
     \x20 --min-coverage F     (run) exit 1 if profile coverage ends below F\n\n\
     Presets: paper (default; scale 0.15 unless --scale) runs the paper's\n\
     world; scale (default scale 1.0) runs the million-account world —\n\
     ~1M accounts / 50k pages, trim with --scale for smoke tests; chaos is\n\
     the paper preset against a heavily faulted crawl surface (rate-limit\n\
     windows, multi-hour outages, elevated noise) — `run` then also prints\n\
     the clean-vs-faulted robustness comparison.\n\n\
     Defaults: --preset paper --seed 42; sweep: --seeds 8 --scales 0.1.\n\
     scale 1.0 reproduces paper-sized campaigns. Sweep runs fan out across\n\
     cores (limit with LIKELAB_THREADS=k; --sequential forces one thread);\n\
     results are bit-identical for any thread count."
}

/// Write `content` to `path`, naming the offending path on failure.
fn write_file(path: &std::path::Path, content: &str) -> Result<(), String> {
    fs::write(path, content).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Turn instrumentation on if any observability flag asks for it.
fn start_observability(opts: &Opts) {
    if opts.wants_observability() {
        likelab_obs::reset();
        likelab_obs::enable();
    }
}

/// After the workload: print the `--timing` tables and write the
/// `--metrics-out` / `--trace-out` JSON files (formats in OBSERVABILITY.md).
fn emit_observability(opts: &Opts) -> Result<(), String> {
    if !opts.wants_observability() {
        return Ok(());
    }
    likelab_obs::disable();
    let snap = likelab_obs::snapshot();
    if opts.timing {
        println!("\n{}", snap.timing_table());
        println!("== timing: span tree ==");
        print!("{}", snap.flame());
    }
    if let Some(path) = &opts.metrics_out {
        write_file(path, &snap.metrics_json())?;
        eprintln!("metrics written to {}", path.display());
    }
    if let Some(path) = &opts.trace_out {
        write_file(path, &snap.trace_json())?;
        eprintln!("trace written to {}", path.display());
    }
    Ok(())
}

/// The exit code the `--crash-after-checkpoints` test hook produces —
/// distinct from ordinary failure so CI can assert the crash actually
/// happened before resuming.
const CRASH_EXIT: u8 = 86;

/// Map the CLI flags onto the study runner's event-sourcing options.
fn run_options(opts: &Opts) -> RunOptions {
    RunOptions {
        log_out: opts.log_out.clone(),
        log_format: opts.log_format,
        checkpoint_dir: opts.checkpoint_dir.clone(),
        checkpoint_every: opts.checkpoint_every.unwrap_or(5_000),
        resume: opts.resume,
        crash_after_checkpoints: opts.crash_after,
        ..RunOptions::default()
    }
}

/// Run the study honoring the logging/checkpoint flags. A simulated crash
/// maps to exit code [`CRASH_EXIT`]; other study errors become messages.
fn run_study_cli(
    config: &StudyConfig,
    opts: &Opts,
) -> Result<Result<StudyOutcome, ExitCode>, String> {
    match run_study_opts(config, &run_options(opts)) {
        Ok(outcome) => {
            if let Some(path) = &opts.log_out {
                eprintln!("study log written to {}", path.display());
            }
            Ok(Ok(outcome))
        }
        Err(StudyError::SimulatedCrash { checkpoints }) => {
            eprintln!(
                "simulated crash after {checkpoints} checkpoint(s); \
                 pick the run back up with --resume <checkpoint-dir>"
            );
            Ok(Err(ExitCode::from(CRASH_EXIT)))
        }
        Err(e) => Err(e.to_string()),
    }
}

fn cmd_run(opts: &Opts) -> Result<ExitCode, String> {
    let config = opts.study_config()?;
    eprintln!(
        "running study: preset={}, seed={}, scale={}...",
        opts.preset_name(),
        opts.seed,
        opts.effective_scale()
    );
    start_observability(opts);
    let outcome = match run_study_cli(&config, opts)? {
        Ok(o) => o,
        Err(code) => return Ok(code),
    };
    println!("{}", outcome.report.render());
    // With structured fault regimes active, run the clean twin and print
    // how far the faulted results drifted.
    if !config.crawl.faults.is_quiet() {
        eprintln!("faults active; running clean twin for the robustness comparison...");
        let clean = run_study(&config.clean_twin());
        println!(
            "{}",
            likelab::analysis::compare_reports(&clean.report, &outcome.report).render()
        );
    }
    emit_observability(opts)?;
    if let Some(floor) = opts.min_coverage {
        let got = outcome.report.crawl.profile_coverage;
        if got < floor {
            eprintln!("error: profile coverage {got:.3} below the --min-coverage floor {floor}");
            return Ok(ExitCode::FAILURE);
        }
        eprintln!("profile coverage {got:.3} >= floor {floor}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_checklist(opts: &Opts) -> Result<ExitCode, String> {
    eprintln!(
        "running study: preset={}, seed={}, scale={}...",
        opts.preset_name(),
        opts.seed,
        opts.effective_scale()
    );
    start_observability(opts);
    let outcome = match run_study_cli(&opts.study_config()?, opts)? {
        Ok(o) => o,
        Err(code) => return Ok(code),
    };
    let checks = checklist(&outcome.report);
    println!("{}", render_checklist(&checks));
    let failed = checks.iter().filter(|c| !c.pass).count();
    println!("{}/{} criteria hold", checks.len() - failed, checks.len());
    emit_observability(opts)?;
    Ok(if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_export(opts: &Opts) -> Result<ExitCode, String> {
    let dir = PathBuf::from(
        opts.positional
            .first()
            .ok_or("export needs a target directory")?,
    );
    fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    eprintln!(
        "running study: preset={}, seed={}, scale={}...",
        opts.preset_name(),
        opts.seed,
        opts.effective_scale()
    );
    let outcome = run_study(&opts.study_config()?);
    let r = &outcome.report;
    let write = |name: &str, content: String| -> Result<(), String> {
        write_file(&dir.join(name), &content)
    };
    write("report.json", r.to_json().map_err(|e| e.to_string())?)?;
    write(
        "dataset.json",
        outcome.dataset.to_json().map_err(|e| e.to_string())?,
    )?;
    write("figure3_direct.dot", r.figure3_direct_dot.clone())?;
    write("figure3_twohop.dot", r.figure3_twohop_dot.clone())?;
    use likelab::analysis::svg;
    let (ads, farms): (Vec<_>, Vec<_>) = r.figure2.iter().cloned().partition(|s| s.platform_ads);
    write("figure1.svg", svg::figure1_svg(&r.figure1))?;
    write(
        "figure2a.svg",
        svg::figure2_svg(&ads, "Figure 2(a): Facebook campaigns"),
    )?;
    write(
        "figure2b.svg",
        svg::figure2_svg(&farms, "Figure 2(b): Like farms"),
    )?;
    write("figure4.svg", svg::figure4_svg(&r.figure4, 10_000.0))?;
    write(
        "figure5a.svg",
        svg::figure5_svg(&r.figure5_pages, "Figure 5(a): page-like set similarity"),
    )?;
    write(
        "figure5b.svg",
        svg::figure5_svg(&r.figure5_users, "Figure 5(b): liker set similarity"),
    )?;
    println!("artifacts written to {}", dir.display());
    Ok(ExitCode::SUCCESS)
}

/// `likelab replay LOG` — rebuild the world, dataset, and report from a
/// captured study log; no model code runs and no randomness is consumed.
/// Prints the same report (or, with `--checklist`, the same checklist and
/// exit code) the original `run`/`checklist` invocation printed, byte for
/// byte.
fn cmd_replay(opts: &Opts) -> Result<ExitCode, String> {
    let path = PathBuf::from(opts.positional.first().ok_or("replay needs a log file")?);
    eprintln!("replaying {}...", path.display());
    start_observability(opts);
    let ropts = ReplayOptions {
        exec: Exec::auto(),
        from_seq: opts.from_seq,
        cache_dir: opts.cache.clone(),
    };
    let outcome = replay_study(&path, &ropts).map_err(|e| e.to_string())?;
    if opts.from_seq.is_some() {
        eprintln!(
            "incremental replay: recomputed campaigns {:?}, served {:?} from cache",
            outcome.recomputed, outcome.cached
        );
    }
    if opts.checklist {
        let checks = checklist(&outcome.report);
        println!("{}", render_checklist(&checks));
        let failed = checks.iter().filter(|c| !c.pass).count();
        println!("{}/{} criteria hold", checks.len() - failed, checks.len());
        emit_observability(opts)?;
        return Ok(if failed == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    println!("{}", outcome.report.render());
    emit_observability(opts)?;
    Ok(ExitCode::SUCCESS)
}

/// `likelab serve LOG` — the live scoring service: tail a study log
/// (optionally while it is still being written) and answer fraud-score
/// queries over line-delimited JSON. See SERVING.md for the protocol,
/// the online-vs-batch equivalence contract, and a load-test walkthrough.
fn cmd_serve(opts: &Opts) -> Result<ExitCode, String> {
    let path = PathBuf::from(opts.positional.first().ok_or("serve needs a log file")?);
    let mut config = ServeConfig::default();
    if let Some(chunk) = opts.chunk {
        config.chunk = chunk;
    }
    let transport = match &opts.tcp {
        Some(addr) => ServeTransport::Tcp(addr.clone()),
        None => ServeTransport::Stdio,
    };
    eprintln!(
        "serving {} ({}, chunk {})...",
        path.display(),
        match transport {
            ServeTransport::Stdio => "stdin/stdout".to_string(),
            ServeTransport::Tcp(ref a) => format!("tcp {a}"),
        },
        config.chunk,
    );
    start_observability(opts);
    let summary = serve(&ServeOptions {
        log: path,
        config,
        follow: opts.follow,
        transport,
        ..ServeOptions::default()
    })
    .map_err(|e| e.to_string())?;
    eprintln!(
        "served {} queries over {} records; p99 query latency {:.3} ms, max ingest lag {} records",
        summary.queries,
        summary.records,
        summary.p99_query_ns as f64 / 1e6,
        summary.max_lag_records,
    );
    emit_observability(opts)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_sweep(opts: &Opts) -> Result<ExitCode, String> {
    let config = SweepConfig {
        master_seed: opts.seed,
        n_seeds: opts.seeds,
        scales: opts.scales.clone(),
    };
    let exec = if opts.sequential {
        Exec::Sequential
    } else {
        Exec::auto()
    };
    eprintln!(
        "sweeping: {} seeds x {} scales from master seed {} ({} workers)...",
        config.n_seeds,
        config.scales.len(),
        config.master_seed,
        exec.worker_count(),
    );
    start_observability(opts);
    let report = run_sweep(&config, exec);
    print!("{}", report.render());
    if let Some(path) = &opts.out {
        let json = report.to_json().map_err(|e| e.to_string())?;
        write_file(path, &json)?;
        println!("sweep report written to {}", path.display());
    }
    emit_observability(opts)?;
    Ok(ExitCode::SUCCESS)
}

/// `likelab lint` — run the determinism & hygiene analyzer over the
/// workspace source. Thin front end over `likelab-lint` (same engine as the
/// standalone CI binary); the checked-in `lint-baseline.json` is used by
/// default when present. Rule catalog: LINTS.md.
fn cmd_lint(args: &[String]) -> Result<ExitCode, String> {
    enum LintFormat {
        Human,
        Json,
        Sarif,
    }
    let mut format = LintFormat::Human;
    let mut update_baseline = std::env::var("LIKELAB_UPDATE_LINT_BASELINE").as_deref() == Ok("1");
    let mut baseline: Option<String> = None;
    let mut no_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = LintFormat::Human,
                Some("json") => format = LintFormat::Json,
                Some("sarif") => format = LintFormat::Sarif,
                _ => return Err("--format needs human|json|sarif".into()),
            },
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file path")?;
                baseline = Some(v.clone());
            }
            "--no-baseline" => no_baseline = true,
            "--update-baseline" => update_baseline = true,
            "--list-rules" => {
                for r in likelab_lint::rules::RULES {
                    println!("{:28} {}", r.id, r.summary);
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--explain" => {
                let id = it.next().ok_or("--explain needs a rule id")?;
                let Some(r) = likelab_lint::rules::RULES.iter().find(|r| r.id == id) else {
                    let known: Vec<&str> =
                        likelab_lint::rules::RULES.iter().map(|r| r.id).collect();
                    return Err(format!(
                        "unknown rule `{id}`; known rules: {}",
                        known.join(", ")
                    ));
                };
                println!("{}\n  {}\n\n{}", r.id, r.summary, r.explain);
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown lint flag: {other}")),
        }
    }
    let root = std::env::current_dir()
        .ok()
        .and_then(|d| likelab_lint::find_workspace_root(&d))
        .ok_or("could not locate the workspace root (run from inside the repo)")?;
    let baseline = if no_baseline {
        None
    } else {
        baseline.or_else(|| {
            root.join("lint-baseline.json")
                .exists()
                .then(|| "lint-baseline.json".to_string())
        })
    };
    let opts = likelab_lint::Options {
        baseline,
        update_baseline,
    };
    let report = likelab_lint::run(&root, &opts)?;
    match format {
        LintFormat::Human => println!("{}", report.render_human()),
        LintFormat::Json => println!("{}", report.render_json()),
        LintFormat::Sarif => println!("{}", report.render_sarif()),
    }
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_paper() -> ExitCode {
    println!("Published Table 1 (IMC 2014):");
    println!(
        "{:8} {:20} {:10} {:>9} {:>9} {:>11} {:>7} {:>11}",
        "Campaign",
        "Provider",
        "Location",
        "Budget",
        "Duration",
        "Monitoring",
        "#Likes",
        "#Terminated"
    );
    for r in paper::TABLE1 {
        println!(
            "{:8} {:20} {:10} {:>9} {:>9} {:>11} {:>7} {:>11}",
            r.label,
            r.provider,
            r.location,
            r.budget,
            r.duration,
            r.monitoring_days
                .map(|d| format!("{d} days"))
                .unwrap_or_else(|| "-".into()),
            r.likes.map(|l| l.to_string()).unwrap_or_else(|| "-".into()),
            r.terminated
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("\nPublished Table 3:");
    println!(
        "{:20} {:>7} {:>10} {:>8} {:>8} {:>8} {:>8} {:>7}",
        "Provider", "Likers", "PublicFL", "AvgFr", "StdFr", "MedFr", "Edges", "2-Hop"
    );
    for r in paper::TABLE3 {
        println!(
            "{:20} {:>7} {:>10} {:>8.0} {:>8.0} {:>8.0} {:>8} {:>7}",
            r.provider,
            r.likers,
            format!("{} ({:.1}%)", r.public_friend_lists, r.public_pct),
            r.friends_mean,
            r.friends_std,
            r.friends_median,
            r.friendships,
            r.two_hop,
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    };
    if cmd == "lint" {
        return match cmd_lint(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}\n\n{}", usage());
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&opts),
        "checklist" => cmd_checklist(&opts),
        "replay" => cmd_replay(&opts),
        "serve" => cmd_serve(&opts),
        "export" => cmd_export(&opts),
        "sweep" => cmd_sweep(&opts),
        "paper" => Ok(cmd_paper()),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => {
            eprintln!("unknown command: {other}\n\n{}", usage());
            Ok(ExitCode::FAILURE)
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
