//! Chaos-preset integration tests: a study run under the full fault stack
//! (transient noise, rate-limit windows, bursty outages) completes end to
//! end, reports per-campaign coverage, stays deterministic across worker
//! counts, and its drift from the clean twin is measurable through
//! [`likelab::analysis::compare_reports`].

use likelab::analysis::compare_reports;
use likelab::sim::Exec;
use likelab::{run_study, run_study_with, StudyConfig, StudyOutcome};
use std::sync::OnceLock;

const SCALE: f64 = 0.06;

fn chaos_run() -> &'static StudyOutcome {
    static SHARED: OnceLock<StudyOutcome> = OnceLock::new();
    SHARED.get_or_init(|| run_study(&StudyConfig::chaos(7, SCALE)))
}

/// A chaos study completes end to end: every campaign still collects likes,
/// and the report carries per-campaign coverage with the fault damage
/// visible in the counters.
#[test]
fn chaos_study_completes_with_coverage() {
    let outcome = chaos_run();
    let crawl = &outcome.report.crawl;
    assert_eq!(crawl.per_campaign.len(), outcome.report.table1.len());
    assert!(crawl.total.polls > 0, "monitors must have polled");
    assert!(
        crawl.total.failed_polls > 0,
        "a chaos run without failed polls means the fault regimes never fired"
    );
    assert!(
        crawl.total.rate_limited_polls + crawl.total.outage_polls > 0,
        "structured regimes (not just noise) must surface in coverage"
    );
    assert!(crawl.poll_success_rate > 0.0 && crawl.poll_success_rate < 1.0);
    assert!(
        crawl.profile_coverage > 0.5,
        "retry/backoff should still resolve most profiles, got {}",
        crawl.profile_coverage
    );
    // The campaigns still gathered data despite the faults.
    let likes: usize = outcome
        .dataset
        .campaigns
        .iter()
        .map(|c| c.like_count())
        .sum();
    assert!(likes > 0, "no likes observed under chaos");
}

/// With a fixed fault profile, the report is byte-identical across worker
/// counts: the fault regimes live on their own RNG streams, so parallelism
/// never reorders their draws.
#[test]
fn chaos_report_is_worker_invariant() {
    let config = StudyConfig::chaos(7, SCALE);
    let json_for = |exec: Exec| {
        run_study_with(&config, exec)
            .report
            .to_json()
            .expect("report serializes")
    };
    let sequential = json_for(Exec::Sequential);
    assert!(!sequential.is_empty());
    for workers in [1usize, 2, 8] {
        let parallel = json_for(Exec::workers(workers));
        assert!(
            sequential == parallel,
            "chaos report differs between sequential and {workers} workers"
        );
    }
}

/// The clean twin of a chaos config differs only in the crawl surface, so
/// the robustness comparison lines up campaign-by-campaign and quantifies
/// the drift.
#[test]
fn robustness_comparison_quantifies_drift() {
    let faulted = chaos_run();
    let clean = run_study(&StudyConfig::chaos(7, SCALE).clean_twin());
    // The clean twin really is clean.
    assert_eq!(clean.report.crawl.total.failed_polls, 0);
    assert_eq!(clean.report.crawl.poll_success_rate, 1.0);
    let cmp = compare_reports(&clean.report, &faulted.report);
    assert_eq!(cmp.rows.len(), clean.report.figure2.len());
    assert!(cmp.faulted_poll_success_rate < 1.0);
    // Temporal shape survives the fault regimes within tolerance: campaigns
    // the paper classifies as bursty stay bursty.
    for row in &cmp.rows {
        let (c, f) = row.peak_2h_share;
        assert_eq!(
            c > 0.25,
            f > 0.25,
            "{}: burstiness classification flipped under faults ({c:.2} vs {f:.2})",
            row.label
        );
    }
    let text = cmp.render();
    assert!(text.contains("Crawl robustness"));
    assert!(text.contains("Totals:"));
}
