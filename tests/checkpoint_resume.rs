//! Checkpoint/resume: a run killed mid-event-loop and resumed from its
//! checkpoint directory finishes byte-identical to an uninterrupted run.

use likelab::{run_study, run_study_opts, RunOptions, StudyConfig, StudyError};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "likelab-checkpoint-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn crash_and_resume_is_byte_identical() {
    let dir = scratch("resume");
    let config = StudyConfig::paper(9, 0.02);
    let uninterrupted = run_study(&config);

    // Run with checkpointing and the crash hook: dies after 1 checkpoint.
    let crashed = run_study_opts(
        &config,
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 5_000,
            crash_after_checkpoints: Some(1),
            ..RunOptions::default()
        },
    );
    match crashed {
        Err(StudyError::SimulatedCrash { checkpoints }) => assert_eq!(checkpoints, 1),
        Ok(_) => panic!("the crash hook must fire"),
        Err(other) => panic!("expected SimulatedCrash, got {other}"),
    }
    assert!(dir.join("checkpoint.json").exists());
    assert!(dir.join("world.log").exists());

    // Resume and compare: dataset, report, and trace all byte-identical.
    let resumed = run_study_opts(
        &config,
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..RunOptions::default()
        },
    )
    .expect("resume");
    assert_eq!(
        uninterrupted.report.to_json().unwrap(),
        resumed.report.to_json().unwrap(),
        "resumed report must match the uninterrupted run"
    );
    assert_eq!(uninterrupted.report.render(), resumed.report.render());
    assert_eq!(
        uninterrupted.dataset.to_json().unwrap(),
        resumed.dataset.to_json().unwrap(),
        "resumed dataset must match the uninterrupted run"
    );
    assert_eq!(
        format!("{:?}", uninterrupted.trace),
        format!("{:?}", resumed.trace),
        "the run journal survives the crash"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resuming_twice_from_the_same_checkpoint_is_deterministic() {
    let dir = scratch("twice");
    let config = StudyConfig::paper(5, 0.02);
    let crashed = run_study_opts(
        &config,
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 5_000,
            crash_after_checkpoints: Some(1),
            ..RunOptions::default()
        },
    );
    assert!(matches!(crashed, Err(StudyError::SimulatedCrash { .. })));

    // Snapshot the checkpoint so the second resume starts from the same
    // frozen state (a resume truncates and appends to world.log).
    let copy = scratch("twice-copy");
    std::fs::create_dir_all(&copy).unwrap();
    for f in ["checkpoint.json", "world.log"] {
        std::fs::copy(dir.join(f), copy.join(f)).unwrap();
    }

    let resume = |d: &PathBuf| {
        run_study_opts(
            &config,
            &RunOptions {
                checkpoint_dir: Some(d.clone()),
                resume: true,
                ..RunOptions::default()
            },
        )
        .expect("resume")
    };
    let a = resume(&dir);
    let b = resume(&copy);
    assert_eq!(
        a.report.to_json().unwrap(),
        b.report.to_json().unwrap(),
        "resume is a pure function of the checkpoint"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&copy).ok();
}

#[test]
fn resume_without_a_checkpoint_is_a_hard_error() {
    let dir = scratch("missing");
    std::fs::create_dir_all(&dir).unwrap();
    let err = run_study_opts(
        &StudyConfig::paper(1, 0.02),
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..RunOptions::default()
        },
    );
    assert!(
        matches!(err, Err(StudyError::Io { .. })),
        "missing checkpoint.json must surface as a structured I/O error"
    );
    std::fs::remove_dir_all(&dir).ok();
}
