//! Golden-snapshot test for the `likelab` CLI help text.
//!
//! The help screen is the CLI's public contract — every command and flag
//! the README and docs reference must actually appear there, and drift
//! between the docs and the binary (e.g. a flag documented but never
//! implemented) should fail loudly. The snapshot lives at
//! `tests/golden/cli_help.txt` and is compared byte-for-byte against
//! what `likelab help` prints.
//!
//! To refresh after an *intentional* CLI surface change:
//!
//! ```text
//! LIKELAB_UPDATE_GOLDEN=1 cargo test --test cli_help
//! ```
//!
//! then review the diff of the golden file like any other code change.

use std::process::Command;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/cli_help.txt");

fn help_output() -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_likelab"))
        .arg("help")
        .output()
        .expect("run likelab help");
    assert!(out.status.success(), "help must exit 0");
    String::from_utf8(out.stdout).expect("help is valid UTF-8")
}

#[test]
fn help_matches_golden_snapshot() {
    let got = help_output();
    if std::env::var_os("LIKELAB_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        eprintln!("golden refreshed: {GOLDEN_PATH}");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    if got != want {
        let mismatch = got
            .lines()
            .zip(want.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w);
        match mismatch {
            Some((i, (g, w))) => panic!(
                "help output drifted from the golden snapshot at line {}:\n  \
                 golden: {w}\n  got:    {g}\n\
                 If the change is intentional, refresh with \
                 LIKELAB_UPDATE_GOLDEN=1 cargo test --test cli_help",
                i + 1
            ),
            None => panic!(
                "help output drifted in length: golden {} lines, got {} lines. \
                 Refresh with LIKELAB_UPDATE_GOLDEN=1 if intentional.",
                want.lines().count(),
                got.lines().count()
            ),
        }
    }
}

/// Every flag the run/replay/serve surface implements must be documented
/// in the help text, and vice versa for the claims the docs make — this is
/// the regression that let `--log-format` be claimed without existing.
#[test]
fn help_names_every_event_sourcing_flag() {
    let help = help_output();
    for needle in [
        "--log-out",
        "--log-format",
        "--checkpoint-dir",
        "--checkpoint-every",
        "--resume",
        "--from-seq",
        "--follow",
        "--tcp",
        "serve LOG",
        "SERVING.md",
        "binary",
        "jsonl",
    ] {
        assert!(help.contains(needle), "help must mention {needle}");
    }
}
