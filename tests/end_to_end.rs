//! End-to-end integration tests: the full study pipeline across every crate,
//! exercised through the public facade.

use likelab::analysis::{ObservedSocial, Provider, StudyReport};
use likelab::detect::{extract, roc, score, BurstConfig, PositiveClass, ScorerWeights};
use likelab::graph::UserId;
use likelab::osn::ActorClass;
use likelab::sim::SimDuration;
use likelab::{checklist, run_study, StudyConfig, StudyOutcome};
use std::sync::OnceLock;

fn outcome() -> &'static StudyOutcome {
    static SHARED: OnceLock<StudyOutcome> = OnceLock::new();
    SHARED.get_or_init(|| run_study(&StudyConfig::paper(2014, 0.1)))
}

#[test]
fn every_shape_criterion_holds_end_to_end() {
    let checks = checklist(&outcome().report);
    let failures: Vec<String> = checks
        .iter()
        .filter(|c| !c.pass)
        .map(|c| format!("{}: {} (measured {})", c.artifact, c.criterion, c.measured))
        .collect();
    assert!(
        failures.is_empty(),
        "shape criteria failed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn crawler_view_is_consistent_with_platform_truth() {
    let o = outcome();
    for (i, c) in o.dataset.campaigns.iter().enumerate() {
        let page = o.honeypots[i];
        let platform: std::collections::HashMap<UserId, likelab::sim::SimTime> =
            o.world.all_likers(page).into_iter().collect();
        for l in &c.likers {
            // Every crawled liker really liked the page...
            let like_time = platform
                .get(&l.user)
                .unwrap_or_else(|| panic!("{}: phantom liker {}", c.spec.label, l.user));
            // ...and the crawler saw it no earlier than it happened.
            assert!(
                l.first_seen >= *like_time,
                "{}: first_seen {} before the like at {}",
                c.spec.label,
                l.first_seen,
                like_time
            );
            // Poll quantization: within one active-poll interval plus the
            // settled interval bound.
            assert!(
                l.first_seen.since(*like_time) <= SimDuration::days(1),
                "{}: crawler lag too large",
                c.spec.label
            );
        }
    }
}

#[test]
fn dataset_survives_json_round_trip() {
    let o = outcome();
    let json = o.dataset.to_json().expect("serialize");
    let back: likelab::honeypot::Dataset = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.total_likes(), o.dataset.total_likes());
    assert_eq!(back.campaigns.len(), o.dataset.campaigns.len());
    let report_a = StudyReport::compute(&o.dataset);
    let report_b = StudyReport::compute(&back);
    assert_eq!(
        report_a.to_json().unwrap(),
        report_b.to_json().unwrap(),
        "analysis is a pure function of the dataset"
    );
}

#[test]
fn privacy_visibility_orders_match_the_paper() {
    let o = outcome();
    let row = |p: Provider| {
        o.report
            .table3
            .iter()
            .find(|r| r.provider == p)
            .unwrap()
            .clone()
    };
    // SF exposes friend lists far more often (58%) than the Facebook
    // campaigns' likers (18%); BL sits in between (25.9%).
    let sf = row(Provider::SocialFormula).public_pct();
    let fb = row(Provider::Facebook).public_pct();
    let bl = row(Provider::BoostLikes).public_pct();
    assert!(sf > fb + 15.0, "SF {sf:.0}% vs FB {fb:.0}%");
    assert!(sf > bl + 10.0, "SF {sf:.0}% vs BL {bl:.0}%");
}

#[test]
fn ground_truth_never_leaks_into_the_dataset() {
    // The dataset's JSON must not contain actor-class labels anywhere: the
    // analysis pipeline works from observables only.
    let o = outcome();
    let json = o.dataset.to_json().unwrap();
    for forbidden in ["ClickProne", "StealthSybil", "Bot(", "ActorClass"] {
        assert!(
            !json.contains(forbidden),
            "dataset leaks ground truth: {forbidden}"
        );
    }
}

#[test]
fn detection_catches_bots_but_not_stealth() {
    let o = outcome();
    let now = o.launch + SimDuration::days(45);
    let cfg = BurstConfig::default();
    let weights = ScorerWeights::default();
    let scored: Vec<(UserId, f64)> = o
        .world
        .user_ids()
        .map(|u| (u, score(&extract(&o.world, u, now, &cfg), &weights)))
        .collect();
    let auc_bots = roc(&o.world, &scored, PositiveClass::FarmOnly).auc;
    assert!(
        auc_bots > 0.75,
        "detector should separate farms: AUC {auc_bots}"
    );

    // Mean scores: bots far above organic, stealth close to organic.
    let mean = |pred: &dyn Fn(ActorClass) -> bool| {
        let xs: Vec<f64> = scored
            .iter()
            .filter(|(u, _)| pred(o.world.account(*u).class))
            .map(|(_, s)| *s)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let bots = mean(&|c| matches!(c, ActorClass::Bot(_)));
    let stealth = mean(&|c| matches!(c, ActorClass::StealthSybil(_)));
    let organic = mean(&|c| c == ActorClass::Organic);
    assert!(
        bots - organic > 2.0 * (stealth - organic),
        "stealth should sit much closer to organic: bots {bots:.3}, stealth {stealth:.3}, organic {organic:.3}"
    );
}

#[test]
fn observed_social_structure_matches_report() {
    let o = outcome();
    let obs = ObservedSocial::build(&o.dataset);
    let rows = obs.table3();
    assert_eq!(rows.len(), o.report.table3.len());
    for (a, b) in rows.iter().zip(&o.report.table3) {
        assert_eq!(a.provider, b.provider);
        assert_eq!(a.likers, b.likers);
        assert_eq!(a.friendships_between_likers, b.friendships_between_likers);
    }
    // Figure 3 DOT exports are well-formed and non-trivial.
    let dot = obs.figure3_dot(false);
    assert!(dot.starts_with("graph likers {"));
    assert!(dot.ends_with("}\n"));
    assert!(dot.matches("--").count() > 10, "the graph has edges");
}

#[test]
fn different_seeds_same_shape_different_numbers() {
    let a = run_study(&StudyConfig::paper(1, 0.05));
    let b = run_study(&StudyConfig::paper(2, 0.05));
    assert_ne!(
        a.dataset.total_likes(),
        b.dataset.total_likes(),
        "stochastic delivery should differ across seeds"
    );
    for o in [&a, &b] {
        let checks = checklist(&o.report);
        let core_failures = checks
            .iter()
            .filter(|c| !c.pass)
            // At 5% scale a few fine-grained criteria can wobble; the
            // structural ones must hold for any seed.
            .filter(|c| c.artifact == "Table 1" || c.artifact == "Figure 2")
            .count();
        assert_eq!(core_failures, 0, "structural criteria failed for a seed");
    }
}

#[test]
fn trace_journal_records_the_run() {
    let o = outcome();
    let journal = o.trace.render();
    assert!(journal.contains("population ready"));
    assert!(
        journal.contains("remained inactive"),
        "scam campaigns noted"
    );
    assert!(journal.contains("event loop drained"));
}

#[test]
fn study_report_is_invariant_under_anonymization() {
    // The release pipeline: pseudonymize everything, recompute every table
    // and figure, and check the numbers don't move (identities only ever
    // matter up to equality).
    let o = outcome();
    let anon = likelab::honeypot::anonymize(&o.dataset, 0xC0FFEE, 0);
    let report = StudyReport::compute(&anon);
    for (a, b) in o.report.table3.iter().zip(&report.table3) {
        assert_eq!(a.likers, b.likers);
        assert_eq!(a.public_friend_lists, b.public_friend_lists);
        assert_eq!(a.friendships_between_likers, b.friendships_between_likers);
        assert_eq!(a.two_hop_between_likers, b.two_hop_between_likers);
        assert!((a.friends.median - b.friends.median).abs() < 1e-9);
    }
    for (a, b) in o.report.figure2.iter().zip(&report.figure2) {
        assert_eq!(a.daily, b.daily);
        assert!((a.peak_2h_share - b.peak_2h_share).abs() < 1e-12);
    }
    for (i, row) in o.report.figure5_users.matrix.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            assert!(
                (v - report.figure5_users.matrix[i][j]).abs() < 1e-9,
                "similarity cell ({i},{j}) moved under anonymization"
            );
        }
    }
    // And the pseudonymized ids really differ from the originals.
    let raw_first = o.dataset.campaigns[2].likers[0].user;
    let anon_first = anon.campaigns[2].likers[0].user;
    assert_ne!(raw_first, anon_first);
}

#[test]
fn baseline_sample_is_organic_scale() {
    let o = outcome();
    assert!(o.dataset.baseline.len() >= 50);
    let median = {
        let mut counts: Vec<usize> = o.dataset.baseline.iter().map(|b| b.like_count).collect();
        counts.sort_unstable();
        counts[counts.len() / 2]
    };
    assert!(
        (15..=70).contains(&median),
        "baseline median {median} should be near the paper's 34"
    );
}
