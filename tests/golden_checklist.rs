//! Golden-snapshot test for `likelab checklist` at the paper preset.
//!
//! The rendered checklist — all 23 reproduction criteria with their
//! measured values, plus the pass-count footer — is checked in at
//! `tests/golden/checklist_paper.txt` and compared byte-for-byte. Any
//! change to the simulation pipeline that perturbs RNG draw order, world
//! construction, or report arithmetic shows up here as a readable diff
//! instead of a silent drift.
//!
//! To refresh after an *intentional* change:
//!
//! ```text
//! LIKELAB_UPDATE_GOLDEN=1 cargo test --test golden_checklist
//! ```
//!
//! then review the diff of the golden file like any other code change.

use likelab::{checklist, render_checklist, run_study, StudyConfig};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/checklist_paper.txt"
);

/// Exactly what `likelab checklist` (paper preset, default seed 42 and
/// scale 0.15) writes to stdout.
fn rendered_checklist() -> String {
    let outcome = run_study(&StudyConfig::paper(42, 0.15));
    let checks = checklist(&outcome.report);
    let failed = checks.iter().filter(|c| !c.pass).count();
    format!(
        "{}\n{}/{} criteria hold\n",
        render_checklist(&checks),
        checks.len() - failed,
        checks.len()
    )
}

#[test]
fn checklist_matches_golden_snapshot() {
    let got = rendered_checklist();
    if std::env::var_os("LIKELAB_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        eprintln!("golden refreshed: {GOLDEN_PATH}");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    if got != want {
        let mismatch = got
            .lines()
            .zip(want.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w);
        match mismatch {
            Some((i, (g, w))) => panic!(
                "checklist output drifted from the golden snapshot at line {}:\n  \
                 golden: {w}\n  got:    {g}\n\
                 If the change is intentional, refresh with \
                 LIKELAB_UPDATE_GOLDEN=1 cargo test --test golden_checklist",
                i + 1
            ),
            None => panic!(
                "checklist output drifted in length: golden {} lines, got {} lines. \
                 Refresh with LIKELAB_UPDATE_GOLDEN=1 if intentional.",
                want.lines().count(),
                got.lines().count()
            ),
        }
    }
}
