//! Codec and differential tier for the packed like-ledger storage.
//!
//! The bit-packed delta-encoded posting lists ([`likelab::osn::posting`]) are
//! an internal storage format: nothing observable may change versus a plain
//! `Vec<u32>` index. This tier locks that down from two directions:
//!
//! 1. **Codec round-trip** — property tests drive [`PostingList`] with
//!    arbitrary strictly-increasing sequences (wide gaps, block-boundary
//!    lengths, duplicates collapsed by the reference) and require the decoded
//!    stream to equal the reference vector element-for-element.
//! 2. **Ledger differential** — a naive reference ledger built on `Vec` and
//!    linear scans answers every public [`LikeLedger`] query on a generated
//!    world; the packed ledger must agree exactly, including iteration order,
//!    across shard boundaries and for both `record` and `ingest_batch` paths.

use std::collections::BTreeSet;

use likelab::graph::{PageId, UserId};
use likelab::osn::posting::{PostingList, BLOCK};
use likelab::osn::{LikeColumns, LikeLedger, LikeRecord};
use likelab::sim::{Exec, SimTime};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// 1. Posting-list codec round-trip vs a Vec<u32> reference
// ---------------------------------------------------------------------------

/// Turn an arbitrary vector of (start, gap) pairs into a strictly increasing
/// sequence; gaps of zero exercise dense runs, large gaps exercise the
/// escape/wide encodings around block boundaries.
fn increasing_from_gaps(gaps: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(gaps.len());
    let mut next: u64 = 0;
    for g in gaps {
        next += *g as u64;
        if next > u32::MAX as u64 {
            break;
        }
        out.push(next as u32);
        next += 1; // strictly increasing: next candidate is at least +1
    }
    out
}

proptest! {
    /// Round-trip: any strictly increasing sequence decodes back exactly,
    /// whether pushed one at a time or appended in bulk. Gaps are wide
    /// enough that sequences can climb all the way to `u32::MAX` (the
    /// generator truncates there), so the top of the id domain — which the
    /// codec must now represent exactly — is inside the search space.
    #[test]
    fn posting_roundtrips_any_increasing_sequence(
        gaps in prop::collection::vec(0u32..67_000_000, 0..400),
    ) {
        let reference = increasing_from_gaps(&gaps);

        let mut pushed = PostingList::new();
        for &v in &reference {
            pushed.push(v);
        }
        let mut bulk = PostingList::new();
        bulk.extend_from_increasing(&reference);

        prop_assert_eq!(pushed.len(), reference.len());
        prop_assert_eq!(bulk.len(), reference.len());
        prop_assert_eq!(pushed.last(), reference.last().copied());
        let decoded_pushed: Vec<u32> = pushed.iter().collect();
        let decoded_bulk: Vec<u32> = bulk.iter().collect();
        prop_assert_eq!(&decoded_pushed, &reference);
        prop_assert_eq!(&decoded_bulk, &reference);
    }

    /// Splitting a bulk append at an arbitrary point — including mid-block —
    /// produces the same encoded stream as a single append.
    #[test]
    fn posting_split_appends_equal_single_append(
        gaps in prop::collection::vec(0u32..100_000, 1..300),
        split_frac in 0.0f64..1.0,
    ) {
        let reference = increasing_from_gaps(&gaps);
        let split = ((reference.len() as f64) * split_frac) as usize;

        let mut whole = PostingList::new();
        whole.extend_from_increasing(&reference);

        let mut parts = PostingList::new();
        parts.extend_from_increasing(&reference[..split]);
        parts.extend_from_increasing(&reference[split..]);

        let a: Vec<u32> = whole.iter().collect();
        let b: Vec<u32> = parts.iter().collect();
        prop_assert_eq!(a, b);
    }
}

/// Deterministic block-boundary sweep: lengths straddling multiples of the
/// packing block, with both dense (+1) and sparse (+large) gap patterns.
#[test]
fn posting_handles_block_boundary_lengths() {
    for len in [0, 1, BLOCK - 1, BLOCK, BLOCK + 1, 2 * BLOCK, 3 * BLOCK + 7] {
        for gap in [1u32, 2, 63, 1 << 16, (1 << 27) / (len.max(1) as u32 + 1)] {
            let reference: Vec<u32> = (0..len as u32).map(|i| i * gap.max(1)).collect();
            let mut list = PostingList::new();
            list.extend_from_increasing(&reference);
            let decoded: Vec<u32> = list.iter().collect();
            assert_eq!(decoded, reference, "len={len} gap={gap}");
        }
    }
}

// ---------------------------------------------------------------------------
// 2. LikeLedger differential vs a naive Vec reference model
// ---------------------------------------------------------------------------

/// Reference ledger: a flat append log with the same accept/reject rule
/// (first like per (user, page) wins) answered by linear scans.
#[derive(Default)]
struct RefLedger {
    log: Vec<(u32, u32, u64)>,
}

impl RefLedger {
    fn record(&mut self, u: u32, p: u32, t: u64) -> bool {
        if self.log.iter().any(|&(lu, lp, _)| lu == u && lp == p) {
            return false;
        }
        self.log.push((u, p, t));
        true
    }

    fn of_page(&self, p: u32) -> Vec<(u32, u32, u64)> {
        self.log
            .iter()
            .copied()
            .filter(|&(_, lp, _)| lp == p)
            .collect()
    }

    fn of_user(&self, u: u32) -> Vec<(u32, u32, u64)> {
        self.log
            .iter()
            .copied()
            .filter(|&(lu, _, _)| lu == u)
            .collect()
    }

    fn user_pages(&self, u: u32) -> BTreeSet<u32> {
        self.of_user(u).iter().map(|&(_, p, _)| p).collect()
    }
}

fn as_tuple(r: LikeRecord) -> (u32, u32, u64) {
    (r.user.0, r.page.0, r.at.as_secs())
}

/// Pages worth interrogating: every page in the log plus absent pages near
/// shard edges, so empty posting lists are checked too.
fn pages_of_interest(reference: &RefLedger) -> BTreeSet<u32> {
    let mut pages: BTreeSet<u32> = reference.log.iter().map(|&(_, p, _)| p).collect();
    pages.extend([0, 39, 4080, 4119, 4096, 5000, 8150, 8199]);
    pages
}

/// Run every public query against both ledgers and demand exact agreement,
/// including iteration order of the streaming accessors.
fn assert_ledgers_agree(
    ledger: &LikeLedger,
    reference: &RefLedger,
    n_users: u32,
) -> Result<(), String> {
    prop_assert_eq!(ledger.len(), reference.log.len());
    let all: Vec<_> = ledger.records().map(as_tuple).collect();
    prop_assert_eq!(&all, &reference.log);
    let pages = pages_of_interest(reference);

    for u in 0..n_users {
        let user = UserId(u);
        let of_user: Vec<_> = ledger.of_user(user).map(as_tuple).collect();
        prop_assert_eq!(&of_user, &reference.of_user(u));
        prop_assert_eq!(ledger.user_like_count(user), of_user.len());
        let pages: BTreeSet<u32> = ledger.user_pages(user).map(|p| p.0).collect();
        prop_assert_eq!(&pages, &reference.user_pages(u));
        let times: Vec<u64> = ledger.user_times(user).map(|t| t.as_secs()).collect();
        let ref_times: Vec<u64> = reference.of_user(u).iter().map(|&(_, _, t)| t).collect();
        prop_assert_eq!(times, ref_times);
        let mut sorted = reference.of_user(u);
        sorted.sort_by_key(|&(_, _, t)| t); // stable, same as of_user_sorted
        let of_user_sorted: Vec<_> = ledger
            .of_user_sorted(user)
            .into_iter()
            .map(as_tuple)
            .collect();
        prop_assert_eq!(&of_user_sorted, &sorted);
    }

    for &p in &pages {
        let page = PageId(p);
        let of_page: Vec<_> = ledger.of_page(page).map(as_tuple).collect();
        prop_assert_eq!(&of_page, &reference.of_page(p));
        prop_assert_eq!(ledger.page_like_count(page), of_page.len());
        let times: Vec<u64> = ledger.page_times(page).map(|t| t.as_secs()).collect();
        let ref_times: Vec<u64> = reference.of_page(p).iter().map(|&(_, _, t)| t).collect();
        prop_assert_eq!(times, ref_times);
        let mut sorted = reference.of_page(p);
        sorted.sort_by_key(|&(_, _, t)| t); // stable, same as of_page_sorted
        let of_page_sorted: Vec<_> = ledger
            .of_page_sorted(page)
            .into_iter()
            .map(as_tuple)
            .collect();
        prop_assert_eq!(&of_page_sorted, &sorted);
    }

    for u in 0..n_users {
        for &p in &pages {
            prop_assert_eq!(
                ledger.likes_page(UserId(u), PageId(p)),
                reference.user_pages(u).contains(&p),
                "likes_page({}, {})",
                u,
                p
            );
        }
    }
    Ok(())
}

/// Spread raw draws in `0..120` across three page bands, two of which sit on
/// either side of the 4096-page shard boundary and near the top of the space.
fn band_page(raw: u32) -> u32 {
    match raw / 40 {
        0 => raw,
        1 => 4080 + (raw - 40),
        _ => 8150 + (raw - 80),
    }
}

proptest! {
    /// Differential: sequential `record` on the packed ledger matches the
    /// naive reference on every query. Pages span the 4096-page shard
    /// boundary so cross-shard posting lists are exercised.
    #[test]
    fn ledger_record_matches_vec_reference(
        likes in prop::collection::vec((0u32..24, 0u32..120, 0u64..50_000), 0..250),
    ) {
        let n_users = 24;
        let mut ledger = LikeLedger::new(n_users as usize, 8200);
        let mut reference = RefLedger::default();
        for &(u, raw, t) in &likes {
            let p = band_page(raw);
            let got = ledger.record(UserId(u), PageId(p), SimTime::from_secs(t));
            let want = reference.record(u, p, t);
            prop_assert_eq!(got, want, "accept/reject diverged at ({}, {}, {})", u, p, t);
        }
        prop_assert!(ledger.shard_count() >= 3, "world must span shards");
        assert_ledgers_agree(&ledger, &reference, n_users)?;
    }

    /// Differential: batched ingest (any worker count) is observationally the
    /// same ledger as the reference built by sequential first-wins replay.
    #[test]
    fn ledger_ingest_batch_matches_vec_reference(
        likes in prop::collection::vec((0u32..24, 0u32..120, 0u64..50_000), 0..250),
        workers in 1usize..5,
        split_frac in 0.0f64..1.0,
    ) {
        let n_users = 24;
        let mut ledger = LikeLedger::new(n_users as usize, 8200);
        let mut reference = RefLedger::default();

        // Two batches so the second one dedups against already-packed state.
        let split = ((likes.len() as f64) * split_frac) as usize;
        for chunk in [&likes[..split], &likes[split..]] {
            let batch: Vec<_> = chunk
                .iter()
                .map(|&(u, raw, t)| (UserId(u), PageId(band_page(raw)), SimTime::from_secs(t)))
                .collect();
            let accepted = ledger.ingest_batch(&batch, Exec::workers(workers));
            let want: usize = chunk
                .iter()
                .map(|&(u, raw, t)| reference.record(u, band_page(raw), t) as usize)
                .sum();
            prop_assert_eq!(accepted, want);
        }
        assert_ledgers_agree(&ledger, &reference, n_users)?;
    }

    /// Differential: the columnar ingest path (what the event loop and the
    /// population synthesizer feed) is observationally the same ledger as the
    /// reference. `sparse` flips the account count so the same draws route
    /// through either the dense counting-sort kernel (24 accounts: every
    /// batch is "large") or the sparse sorted-triples kernel (4096 accounts:
    /// every batch stays under the `n_users / 8` threshold).
    #[test]
    fn ledger_ingest_columns_matches_vec_reference(
        likes in prop::collection::vec((0u32..24, 0u32..120, 0u64..50_000), 0..250),
        workers in 1usize..5,
        split_frac in 0.0f64..1.0,
        sparse in any::<bool>(),
    ) {
        let n_users = if sparse { 4096 } else { 24 };
        let mut ledger = LikeLedger::new(n_users, 8200);
        let mut reference = RefLedger::default();

        // Two batches so the second one dedups against already-packed state.
        let split = ((likes.len() as f64) * split_frac) as usize;
        for chunk in [&likes[..split], &likes[split..]] {
            let mut cols = LikeColumns::with_capacity(chunk.len());
            for &(u, raw, t) in chunk {
                cols.push(UserId(u), PageId(band_page(raw)), SimTime::from_secs(t));
            }
            let accepted = ledger.ingest_columns(&cols, Exec::workers(workers));
            let want: usize = chunk
                .iter()
                .map(|&(u, raw, t)| reference.record(u, band_page(raw), t) as usize)
                .sum();
            prop_assert_eq!(accepted, want);
        }
        // Draws never name a user past 23, so checking that range covers
        // every populated row in both ledgers.
        assert_ledgers_agree(&ledger, &reference, 24)?;
    }
}
