//! Property: any interleaving-valid permutation of same-timestamp world
//! events replays to the identical world state.
//!
//! Events that carry the same timestamp and touch disjoint entities are
//! commutative by construction — the log's total order between them is an
//! artifact of append order, not causality. Replaying them in any such
//! order must converge on the same world.

use likelab::graph::{PageId, UserId};
use likelab::osn::demographics::Country;
use likelab::osn::{
    ActorClass, Gender, OsnWorld, PageCategory, PrivacySettings, Profile, WorldEvent,
};
use likelab::sim::{Rng, SimTime};
use proptest::prelude::*;

const USERS: u32 = 8;
const PAGES: u32 = 5;

/// A base world with `USERS` accounts and `PAGES` pages, recording off.
fn base_world() -> OsnWorld {
    let mut w = OsnWorld::new();
    for i in 0..USERS {
        w.create_account(
            Profile {
                gender: if i % 2 == 0 {
                    Gender::Male
                } else {
                    Gender::Female
                },
                age: 20 + (i as u8 % 30),
                country: Country::Usa,
                home_region: (i % 3) as u8,
            },
            ActorClass::Organic,
            PrivacySettings {
                friend_list_public: true,
                likes_public: true,
                searchable: true,
            },
            SimTime::EPOCH,
        );
    }
    for i in 0..PAGES {
        w.create_page(
            format!("page-{i}"),
            "",
            None,
            PageCategory::Background,
            SimTime::EPOCH,
        );
    }
    w
}

/// Everything observable about the world, as a comparable string.
fn digest(w: &OsnWorld) -> String {
    let mut out = String::new();
    for u in 0..USERS {
        let id = UserId(u);
        out.push_str(&format!(
            "u{u}: active={} friends={} likes={}\n",
            w.is_active(id),
            w.total_friend_count(id),
            w.likes().user_like_count(id),
        ));
    }
    for p in 0..PAGES {
        let id = PageId(p);
        out.push_str(&format!(
            "p{p}: all={:?} visible={:?}\n",
            w.all_likers(id),
            w.visible_likers(id),
        ));
    }
    out
}

/// Deterministic shuffle of `items` from `seed`.
fn permute<T>(items: &mut [T], seed: u64) {
    Rng::seed_from_u64(seed).shuffle(items);
}

/// A random *interleaving-valid* permutation: events touching the same
/// entity keep their relative order (grouped by `key`), but the groups are
/// merged in an arbitrary order. Permutations that reorder within a group
/// are not interleaving-valid — e.g. two likes on one page are observably
/// ordered by the page's append-ordered liker list.
fn interleave(
    events: Vec<WorldEvent>,
    key: impl Fn(&WorldEvent) -> u32,
    seed: u64,
) -> Vec<WorldEvent> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut queues: Vec<std::collections::VecDeque<WorldEvent>> = Vec::new();
    let mut keys: Vec<u32> = Vec::new();
    for ev in events {
        let k = key(&ev);
        match keys.iter().position(|&q| q == k) {
            Some(i) => queues[i].push_back(ev),
            None => {
                keys.push(k);
                queues.push(std::collections::VecDeque::from([ev]));
            }
        }
    }
    let mut out = Vec::new();
    while !queues.is_empty() {
        let i = rng.index(queues.len());
        if let Some(ev) = queues[i].pop_front() {
            out.push(ev);
        }
        if queues[i].is_empty() {
            queues.swap_remove(i);
        }
    }
    out
}

proptest! {
    /// Same-timestamp likes on distinct (user, page) pairs commute: any
    /// permutation replays to the identical world.
    #[test]
    fn same_timestamp_like_permutations_commute(
        seed in any::<u64>(),
        picks in prop::collection::hash_set(0u32..(USERS * PAGES), 1..30),
    ) {
        let at = SimTime::from_secs(1_000);
        let mut sorted: Vec<u32> = picks.into_iter().collect();
        sorted.sort_unstable();
        let events: Vec<WorldEvent> = sorted
            .iter()
            .map(|k| WorldEvent::Like {
                user: UserId(k / PAGES),
                page: PageId(k % PAGES),
                at,
            })
            .collect();

        let mut a = base_world();
        for ev in &events {
            a.apply_event(ev);
        }
        // Interleaving-valid: likes on the same page keep their relative
        // order (the page's liker list is append-ordered), pages merge in
        // any order.
        let shuffled = interleave(
            events,
            |ev| match ev {
                WorldEvent::Like { page, .. } => page.0,
                _ => unreachable!(),
            },
            seed,
        );
        let mut b = base_world();
        for ev in &shuffled {
            b.apply_event(ev);
        }
        prop_assert_eq!(digest(&a), digest(&b));
    }

    /// Mixed same-timestamp events on disjoint entities — friendships
    /// between one user pool, likes from another, off-network counts on a
    /// third — commute under any permutation.
    #[test]
    fn disjoint_entity_event_permutations_commute(seed in any::<u64>()) {
        let at = SimTime::from_secs(2_000);
        let mut events = vec![
            WorldEvent::Friendship { a: UserId(0), b: UserId(1) },
            WorldEvent::Friendship { a: UserId(2), b: UserId(3) },
            WorldEvent::Like { user: UserId(4), page: PageId(0), at },
            WorldEvent::Like { user: UserId(5), page: PageId(1), at },
            WorldEvent::OffNetworkFriends { user: UserId(6), n: 17 },
            WorldEvent::Terminated { user: UserId(7), at },
        ];

        let mut a = base_world();
        for ev in &events {
            a.apply_event(ev);
        }
        let mut b = base_world();
        permute(&mut events, seed);
        for ev in &events {
            b.apply_event(ev);
        }
        prop_assert_eq!(digest(&a), digest(&b));
    }
}
