//! Methodology integration tests: the platform-operator workflows the paper
//! motivates, run over a full study outcome — detector training, audience
//! divergence, lockstep clustering, and the removed-likes observation.

use likelab::detect::{
    extract, fit, judge_audience, judge_page, roc, score, AudienceConfig, BurstConfig,
    PositiveClass, TrainConfig,
};
use likelab::graph::UserId;
use likelab::osn::{ActorClass, AudienceReport};
use likelab::sim::SimDuration;
use likelab::{run_study, StudyConfig, StudyOutcome};
use std::sync::OnceLock;

fn outcome() -> &'static StudyOutcome {
    static SHARED: OnceLock<StudyOutcome> = OnceLock::new();
    SHARED.get_or_init(|| run_study(&StudyConfig::paper(77, 0.1)))
}

#[test]
fn trained_detector_beats_chance_and_matches_hand_weights() {
    let o = outcome();
    let now = o.launch + SimDuration::days(45);
    let cfg = BurstConfig::default();
    // Training set: every 3rd account (the operator's labeled sample).
    let mut train = Vec::new();
    let mut eval = Vec::new();
    for (i, u) in o.world.user_ids().enumerate() {
        let f = extract(&o.world, u, now, &cfg);
        let label = o.world.account(u).class.is_farm();
        if i % 3 == 0 {
            train.push((f, label));
        } else {
            eval.push((u, f));
        }
    }
    let trained = fit(&train, &TrainConfig::default());
    let scored: Vec<(UserId, f64)> = eval.iter().map(|(u, f)| (*u, score(f, &trained))).collect();
    let auc = roc(&o.world, &scored, PositiveClass::FarmOnly).auc;
    assert!(auc > 0.8, "trained on study data: AUC {auc}");
}

#[test]
fn audience_divergence_flags_the_skewed_honeypots() {
    let o = outcome();
    let global = AudienceReport::global(&o.world);
    let cfg = AudienceConfig::default();
    let verdict = |label: &str| {
        let idx = o
            .dataset
            .campaigns
            .iter()
            .position(|c| c.spec.label == label)
            .unwrap();
        judge_audience(&o.world, o.honeypots[idx], &global, &cfg)
    };
    let fb_ind = verdict("FB-IND");
    let sf_all = verdict("SF-ALL");
    assert!(
        fb_ind.score > 0.6,
        "young-male-India audience flags: {:?}",
        fb_ind
    );
    // SF mirrors global demographics; only geography betrays it.
    assert!(sf_all.age_kl < 0.2, "SF age KL {}", sf_all.age_kl);
    assert!(sf_all.geo_concentration > 0.8);
    assert!(
        fb_ind.age_kl > sf_all.age_kl * 3.0,
        "KL contrast: {} vs {}",
        fb_ind.age_kl,
        sf_all.age_kl
    );
}

#[test]
fn burst_detector_flags_bot_pages_not_ad_pages() {
    let o = outcome();
    // A 4-hour window: AuthenticLikes delivered "700+ likes within the
    // first 4 hours of day 2" in the paper, so that's the operator's
    // natural detection horizon.
    let cfg = BurstConfig {
        window: likelab::sim::SimDuration::hours(4),
        ..BurstConfig::default()
    };
    let verdict = |label: &str| {
        let idx = o
            .dataset
            .campaigns
            .iter()
            .position(|c| c.spec.label == label)
            .unwrap();
        judge_page(&o.world, o.honeypots[idx], Some(o.launch), &cfg)
    };
    for bursty in ["SF-ALL", "SF-USA", "AL-USA", "MS-USA"] {
        assert!(verdict(bursty).flagged, "{bursty} should be flagged");
    }
    for smooth in ["FB-IND", "FB-EGY", "BL-USA"] {
        assert!(!verdict(smooth).flagged, "{smooth} should pass");
    }
}

#[test]
fn removed_likes_are_observed_during_monitoring() {
    let o = outcome();
    // Across all campaigns, some disappearances should have been observed
    // live (anti-fraud sweeps run weekly during monitoring).
    let total_disappeared: usize = o
        .dataset
        .campaigns
        .iter()
        .filter_map(|c| c.observations.last())
        .map(|obs| obs.disappeared_total)
        .sum();
    let total_terminated: usize = o
        .dataset
        .campaigns
        .iter()
        .map(|c| c.terminated_after_month)
        .sum();
    assert!(
        total_terminated > 0,
        "the month-later check should find terminated likers"
    );
    // The live observation window is shorter than the month, so it sees a
    // subset — but the counter must be consistent (monotone within runs).
    for c in &o.dataset.campaigns {
        let series: Vec<usize> = c.observations.iter().map(|o| o.disappeared_total).collect();
        assert!(
            series.windows(2).all(|w| w[0] <= w[1]),
            "{}: disappearance counter must be monotone",
            c.spec.label
        );
    }
    let _ = total_disappeared;
}

#[test]
fn stealth_farm_wins_the_detection_game() {
    // The paper's bottom line as one number: recall on bots vs recall on
    // stealth sybils at the same operating point. The operator trains on a
    // labeled subsample of *bot* takedowns plus organics — the realistic
    // setting where stealth sybils are unlabeled — and we measure who gets
    // caught.
    let o = outcome();
    let now = o.launch + SimDuration::days(45);
    let cfg = BurstConfig::default();
    let mut train = Vec::new();
    for (i, u) in o.world.user_ids().enumerate() {
        if i % 2 != 0 {
            continue;
        }
        match o.world.account(u).class {
            ActorClass::Bot(_) => train.push((extract(&o.world, u, now, &cfg), true)),
            ActorClass::Organic => train.push((extract(&o.world, u, now, &cfg), false)),
            _ => {}
        }
    }
    let weights = fit(&train, &TrainConfig::default());
    let recall = |pred: &dyn Fn(ActorClass) -> bool| {
        let (mut tp, mut total) = (0usize, 0usize);
        for (i, u) in o.world.user_ids().enumerate() {
            if i % 2 == 0 {
                continue; // held out
            }
            if pred(o.world.account(u).class) {
                total += 1;
                if score(&extract(&o.world, u, now, &cfg), &weights) >= 0.5 {
                    tp += 1;
                }
            }
        }
        tp as f64 / total.max(1) as f64
    };
    let bot_recall = recall(&|c| matches!(c, ActorClass::Bot(_)));
    let stealth_recall = recall(&|c| matches!(c, ActorClass::StealthSybil(_)));
    let organic_fpr = recall(&|c| c == ActorClass::Organic);
    assert!(
        bot_recall > 0.7,
        "a trained detector catches most bots: {bot_recall:.2}"
    );
    assert!(
        bot_recall > stealth_recall + 0.3,
        "bots {bot_recall:.2} vs stealth {stealth_recall:.2}"
    );
    assert!(
        stealth_recall < 0.5,
        "stealth largely evades the bot-trained detector: {stealth_recall:.2}"
    );
    assert!(organic_fpr < 0.2, "organic FPR {organic_fpr:.2}");
}
