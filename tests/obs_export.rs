//! The observability exporters against the real workload: run an
//! instrumented sweep, export, and parse the JSON back with the workspace's
//! JSON parser. This is the consumer the OBSERVABILITY.md schemas promise
//! to keep working, and the end-to-end check behind the CLI's
//! `--metrics-out` / `--trace-out` flags.
//!
//! Runs in its own process (integration-test binary), so it owns the global
//! observability state.

use likelab::sim::Exec;
use likelab::{run_sweep, SweepConfig};
use serde::Value;

/// The two tests toggle the same process-global enabled flag; serialize
/// them (the harness runs tests of one binary concurrently).
static OBS_STATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn instrumented_snapshot() -> likelab_obs::Snapshot {
    likelab_obs::reset();
    likelab_obs::enable();
    let config = SweepConfig {
        master_seed: 42,
        n_seeds: 2,
        scales: vec![0.02],
    };
    let report = run_sweep(&config, Exec::workers(2));
    likelab_obs::disable();
    assert_eq!(report.cells.len(), 1);
    likelab_obs::snapshot()
}

#[test]
fn exported_json_parses_and_covers_the_hot_paths() {
    let _state = OBS_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let snap = instrumented_snapshot();

    // --- metrics document ---------------------------------------------
    let metrics: Value = serde_json::from_str(&snap.metrics_json()).expect("metrics JSON parses");
    assert_eq!(metrics.get("version"), Some(&Value::UInt(1)));

    let counters = metrics.get("counters").expect("counters object");
    assert_eq!(
        counters.get("sweep.jobs.completed"),
        Some(&Value::UInt(2)),
        "one count per sweep run"
    );
    match counters.get("likes.synthesized") {
        Some(Value::UInt(n)) => assert!(*n > 1_000, "likes.synthesized = {n}"),
        other => panic!("likes.synthesized missing or wrong type: {other:?}"),
    }
    assert!(counters.get("parallel.jobs.completed").is_some());
    assert!(counters.get("study.events.fired").is_some());

    let histograms = metrics.get("histograms").expect("histograms object");
    let job_ns = histograms.get("parallel.job.ns").expect("per-job timing");
    for field in ["count", "sum", "min", "max", "p50", "p99", "buckets"] {
        assert!(job_ns.get(field).is_some(), "histogram field {field}");
    }
    assert!(histograms.get("parallel.worker.busy_ns").is_some());
    // Per-section report timing carries its label in the metric name.
    assert!(
        histograms
            .get("report.section.ns{section=table1}")
            .is_some(),
        "labelled section histogram"
    );

    let span_stats = metrics.get("spans").expect("span aggregates object");
    for name in [
        "sweep.run",
        "study.run",
        "study.population",
        "study.event_loop",
        "study.report",
        "population.likes",
        "report.compute",
        "parallel.map",
    ] {
        let stat = span_stats
            .get(name)
            .unwrap_or_else(|| panic!("span aggregate {name} missing"));
        match stat.get("count") {
            Some(Value::UInt(n)) => assert!(*n > 0, "{name} count"),
            other => panic!("{name} count wrong: {other:?}"),
        }
    }
    match span_stats.get("study.run").and_then(|s| s.get("count")) {
        Some(Value::UInt(2)) => {}
        other => panic!("expected exactly 2 study.run spans, got {other:?}"),
    }

    // --- trace document -----------------------------------------------
    let trace: Value = serde_json::from_str(&snap.trace_json()).expect("trace JSON parses");
    assert_eq!(trace.get("version"), Some(&Value::UInt(1)));
    let Some(Value::Array(spans)) = trace.get("spans") else {
        panic!("trace spans must be an array");
    };
    assert!(!spans.is_empty());
    for s in spans {
        for field in ["id", "parent", "name", "thread", "start_ns", "dur_ns"] {
            assert!(s.get(field).is_some(), "span field {field}");
        }
    }
    // Parent links resolve: study.population nests under some study.run.
    let run_ids: Vec<&Value> = spans
        .iter()
        .filter(|s| s.get("name").and_then(Value::as_str) == Some("study.run"))
        .map(|s| s.get("id").expect("id"))
        .collect();
    let pop = spans
        .iter()
        .find(|s| s.get("name").and_then(Value::as_str) == Some("study.population"))
        .expect("population span recorded");
    let parent = pop.get("parent").expect("parent field");
    assert!(
        run_ids.contains(&parent),
        "study.population must nest under a study.run span"
    );

    // --- human renderings ----------------------------------------------
    let table = snap.timing_table();
    assert!(table.contains("study.run"), "timing table:\n{table}");
    assert!(table.contains("sweep.jobs.completed"));
    let flame = snap.flame();
    assert!(
        flame.lines().any(|l| l.starts_with("sweep.run")),
        "sweep.run is a flame root:\n{flame}"
    );
    assert!(flame.contains("study.run"));
}

#[test]
fn disabled_observability_collects_nothing_and_changes_nothing() {
    let _state = OBS_STATE.lock().unwrap_or_else(|e| e.into_inner());
    likelab_obs::reset();
    likelab_obs::disable();
    let config = SweepConfig {
        master_seed: 7,
        n_seeds: 1,
        scales: vec![0.02],
    };
    let quiet = run_sweep(&config, Exec::Sequential);
    let snap = likelab_obs::snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.spans.is_empty());

    // Enabling instrumentation must not perturb results.
    likelab_obs::enable();
    let observed = run_sweep(&config, Exec::Sequential);
    likelab_obs::disable();
    assert_eq!(
        quiet.to_json().expect("serializes"),
        observed.to_json().expect("serializes"),
        "observability must never change simulation output"
    );
}
