//! Renumbering invariance tier.
//!
//! [`likelab::graph::Renumbering`] relabels vertices (degree-descending for
//! the cache-conscious CSR) and every consumer must be observationally
//! unaffected:
//!
//! - **sybilrank** runs on the degree-ordered CSR internally; its trust
//!   vector must be *bitwise* identical to the original push-model power
//!   iteration on the untouched graph (the "renumbering off" reference,
//!   reimplemented here verbatim from the pre-CSR code).
//! - **twohop / kcore / components / DOT** produce integer or canonically
//!   ordered output, so running them on a relabeled graph and mapping ids
//!   back must give exactly the same answer.
//! - the renumbering map itself must be a true permutation:
//!   `renumber ∘ renumber⁻¹ = id` in both directions.

use std::collections::{BTreeSet, HashMap};

use likelab::detect::sybilrank::{sybil_rank, SybilRankConfig};
use likelab::graph::{
    components, dot, generate, kcore, twohop, FriendGraph, RenumberedCsr, Renumbering, UserId,
};
use likelab::sim::Rng;
use proptest::prelude::*;

/// Random graph: `n` nodes, `m` edge attempts, plus a few isolated nodes so
/// zero-degree handling is always exercised.
fn random_graph(n: usize, m: usize, seed: u64) -> FriendGraph {
    let mut g = FriendGraph::with_nodes(n + 3);
    let members: Vec<UserId> = (0..n as u32).map(UserId).collect();
    let mut rng = Rng::seed_from_u64(seed);
    generate::erdos_renyi_gnm(&mut g, &members, m, &mut rng);
    g
}

/// Random permutation of `n` ids as a [`Renumbering`].
fn random_permutation(n: usize, seed: u64) -> Renumbering {
    let mut old_of_new: Vec<u32> = (0..n as u32).collect();
    Rng::seed_from_u64(seed).shuffle(&mut old_of_new);
    Renumbering::from_old_of_new(old_of_new)
}

/// The pre-CSR sybilrank: push-model power iteration in old-id order. This is
/// the bit-exact reference the degree-ordered implementation must reproduce.
fn sybil_rank_reference(graph: &FriendGraph, seeds: &[UserId], iterations: usize) -> Vec<f64> {
    let n = graph.node_count();
    let mut trust = vec![0.0f64; n];
    let seed_share = 1.0 / seeds.len() as f64;
    for s in seeds {
        trust[s.idx()] += seed_share;
    }
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|v| *v = 0.0);
        for u in graph.nodes() {
            let t = trust[u.idx()];
            if t == 0.0 {
                continue;
            }
            let d = graph.degree(u);
            if d == 0 {
                next[u.idx()] += t;
                continue;
            }
            let share = t / d as f64;
            for v in graph.neighbors(u) {
                next[v.idx()] += share;
            }
        }
        std::mem::swap(&mut trust, &mut next);
    }
    for u in graph.nodes() {
        let d = graph.degree(u);
        if d > 0 {
            trust[u.idx()] /= d as f64;
        }
    }
    trust
}

proptest! {
    /// The CSR-backed sybilrank is bitwise identical to the push-model
    /// reference — not merely close: report goldens and replay identity
    /// depend on the exact f64 bit patterns.
    #[test]
    fn sybilrank_bitwise_matches_push_reference(
        n in 2usize..40,
        m in 0usize..120,
        n_seeds in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let g = random_graph(n, m, seed);
        let seeds: Vec<UserId> = (0..n_seeds as u32).map(UserId).collect();
        let config = SybilRankConfig { iterations: Some(8) };
        let got = sybil_rank(&g, &seeds, &config);
        let want = sybil_rank_reference(&g, &seeds, 8);
        for (u, &w) in want.iter().enumerate() {
            let t = got.trust(UserId(u as u32));
            prop_assert_eq!(
                t.to_bits(),
                w.to_bits(),
                "trust[{}] diverged: {} vs {}",
                u,
                t,
                w
            );
        }
    }

    /// renumber ∘ renumber⁻¹ = id, in both directions, for arbitrary
    /// permutations and for the degree-descending map of a random graph.
    #[test]
    fn renumber_composed_with_inverse_is_identity(
        n in 1usize..200,
        m in 0usize..300,
        seed in 0u64..1_000,
    ) {
        for map in [
            random_permutation(n, seed),
            Renumbering::degree_descending(&random_graph(n, m, seed)),
        ] {
            let inv = map.inverse();
            prop_assert_eq!(map.len(), inv.len());
            for i in 0..map.len() as u32 {
                let id = UserId(i);
                // map⁻¹ ∘ map = id (as old → new → old), and the reverse.
                prop_assert_eq!(map.old_of(map.new_of(id)), id);
                prop_assert_eq!(map.new_of(map.old_of(id)), id);
                // The inverse map swaps the two directions wholesale.
                prop_assert_eq!(inv.new_of(id), map.old_of(id));
                prop_assert_eq!(inv.old_of(id), map.new_of(id));
            }
            let double = inv.inverse();
            for i in 0..map.len() as u32 {
                prop_assert_eq!(double.new_of(UserId(i)), map.new_of(UserId(i)));
            }
        }
    }

    /// Relabeling the graph and mapping results back changes nothing for the
    /// integer-output algorithms: two-hop census, k-core shells, components.
    #[test]
    fn integer_algorithms_are_renumbering_invariant(
        n in 2usize..40,
        m in 0usize..120,
        n_members in 1usize..10,
        seed in 0u64..1_000,
    ) {
        let g = random_graph(n, m, seed);
        let total = g.node_count();
        let map = random_permutation(total, seed ^ 0x9e37);
        let h = map.apply(&g);
        let members: Vec<UserId> = (0..n_members.min(total) as u32).map(UserId).collect();
        let mapped: Vec<UserId> = members.iter().map(|&u| map.new_of(u)).collect();

        // twohop: counts and the pair census (pairs mapped back, canonical).
        prop_assert_eq!(
            twohop::direct_edges_within(&g, &members),
            twohop::direct_edges_within(&h, &mapped)
        );
        for exclude_direct in [false, true] {
            prop_assert_eq!(
                twohop::two_hop_count(&g, &members, exclude_direct),
                twohop::two_hop_count(&h, &mapped, exclude_direct)
            );
            let pairs_g: BTreeSet<(UserId, UserId)> = twohop::two_hop_pairs(&g, &members, exclude_direct)
                .into_iter()
                .collect();
            let pairs_h: BTreeSet<(UserId, UserId)> = twohop::two_hop_pairs(&h, &mapped, exclude_direct)
                .into_iter()
                .map(|(a, b)| {
                    let (x, y) = (map.old_of(a), map.old_of(b));
                    (x.min(y), x.max(y))
                })
                .collect();
            let pairs_g: BTreeSet<(UserId, UserId)> = pairs_g
                .into_iter()
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect();
            prop_assert_eq!(pairs_g, pairs_h);
        }

        // kcore: shell numbers follow the relabeling pointwise.
        let core_g = kcore::core_numbers(&g);
        let core_h = kcore::core_numbers(&h);
        for u in 0..total as u32 {
            prop_assert_eq!(core_g[u as usize], core_h[map.new_of(UserId(u)).idx()]);
        }

        // components: same partition after mapping back and canonicalizing.
        let all: Vec<UserId> = (0..total as u32).map(UserId).collect();
        let all_mapped: Vec<UserId> = all.iter().map(|&u| map.new_of(u)).collect();
        let canon = |mut comps: Vec<Vec<UserId>>| -> BTreeSet<Vec<UserId>> {
            comps
                .iter_mut()
                .map(|c| {
                    c.sort();
                    c.clone()
                })
                .collect()
        };
        let comps_g = canon(components(&g, &all));
        let comps_h = canon(
            components(&h, &all_mapped)
                .into_iter()
                .map(|c| c.into_iter().map(|u| map.old_of(u)).collect())
                .collect(),
        );
        prop_assert_eq!(comps_g, comps_h);
    }

    /// The degree-ordered CSR is a faithful re-encoding: same degrees, same
    /// neighbor sets, rows sorted by the documented ascending-old-id order.
    #[test]
    fn csr_rows_mirror_graph_adjacency(
        n in 1usize..60,
        m in 0usize..200,
        seed in 0u64..1_000,
    ) {
        let g = random_graph(n, m, seed);
        let csr = RenumberedCsr::degree_ordered(&g);
        let map = csr.map();
        prop_assert_eq!(csr.node_count(), g.node_count());
        for old in 0..g.node_count() as u32 {
            let new = map.new_of(UserId(old)).idx();
            prop_assert_eq!(csr.degree(new), g.degree(UserId(old)));
            let row_olds: Vec<u32> = csr.row(new)
                .iter()
                .map(|&w| map.old_of(UserId(w)).0)
                .collect();
            let mut sorted = row_olds.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&row_olds, &sorted, "row order must be ascending old id");
            let neigh: Vec<u32> = g.neighbors(UserId(old)).into_iter().map(|v| v.0).collect();
            prop_assert_eq!(row_olds, neigh);
        }
    }
}

/// DOT export is untouched by renumbering machinery: exporting the identity
/// relabeling of a graph yields byte-identical output.
#[test]
fn dot_export_is_byte_identical_under_identity_renumbering() {
    let g = random_graph(24, 60, 7);
    let id = Renumbering::identity(g.node_count());
    let h = id.apply(&g);
    let members: Vec<UserId> = (0..20).map(UserId).collect();
    let mut group_of: HashMap<UserId, String> = HashMap::new();
    for &u in &members {
        group_of.insert(
            u,
            if u.0 % 2 == 0 {
                "farm".into()
            } else {
                "organic".into()
            },
        );
    }
    for drop_isolated in [false, true] {
        let a = dot::induced_dot(&g, &members, &group_of, drop_isolated);
        let b = dot::induced_dot(&h, &members, &group_of, drop_isolated);
        assert_eq!(a, b, "identity renumbering changed DOT bytes");
    }
}

/// Degree ordering is what it claims: new ids sorted by descending degree,
/// ties broken by ascending old id — the documented, versioned map contract.
#[test]
fn degree_descending_map_orders_by_degree() {
    let g = random_graph(40, 100, 11);
    let map = Renumbering::degree_descending(&g);
    let mut last: Option<(usize, u32)> = None;
    for new in 0..map.len() as u32 {
        let old = map.old_of(UserId(new));
        let key = (g.degree(old), old.0);
        if let Some((last_deg, last_old)) = last {
            assert!(
                key.0 < last_deg || (key.0 == last_deg && key.1 > last_old),
                "degree order violated at new id {new}"
            );
        }
        last = Some(key);
    }
}
