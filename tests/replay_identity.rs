//! Replay-identity guarantees: a captured study log reproduces the run's
//! report and checklist byte-for-byte at any worker count, through either
//! codec, and incrementally; a damaged log is a hard structured error.

use likelab::core::record::read_study_log;
use likelab::core::replay::{replay_records, replay_study, ReplayOptions};
use likelab::sim::event::{encode_binary, LogError, LogHeader, LogRecord};
use likelab::sim::Exec;
use likelab::{
    checklist, render_checklist, run_study_opts, RunOptions, StudyConfig, StudyError, StudyRecord,
};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::OnceLock;

/// One small logged study, shared across tests (runs once).
struct Captured {
    report_json: String,
    render: String,
    checklist: String,
    header: LogHeader,
    records: Vec<(u64, StudyRecord)>,
}

fn captured() -> &'static Captured {
    static SHARED: OnceLock<Captured> = OnceLock::new();
    SHARED.get_or_init(|| {
        let config = StudyConfig::paper(21, 0.02);
        let outcome = run_study_opts(
            &config,
            &RunOptions {
                capture_log: true,
                ..RunOptions::default()
            },
        )
        .expect("logged run");
        let log = outcome.log.as_ref().expect("log captured");
        Captured {
            report_json: outcome.report.to_json().expect("report json"),
            render: outcome.report.render(),
            checklist: render_checklist(&checklist(&outcome.report)),
            header: log.header().clone(),
            records: log.records().to_vec(),
        }
    })
}

/// A scratch directory unique to this test binary + tag.
fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("likelab-replay-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn binary_log_bytes() -> Vec<u8> {
    let c = captured();
    let records: Vec<LogRecord> = c
        .records
        .iter()
        .map(|(seq, r)| LogRecord {
            seq: *seq,
            payload: r.to_value(),
        })
        .collect();
    encode_binary(&c.header, &records).expect("encode")
}

#[test]
fn replay_is_byte_identical_at_any_worker_count() {
    let c = captured();
    for exec in [
        Exec::Sequential,
        Exec::Parallel { workers: 2 },
        Exec::Parallel { workers: 8 },
    ] {
        let outcome = replay_records(
            &c.header,
            c.records.clone(),
            &ReplayOptions {
                exec,
                ..ReplayOptions::default()
            },
        )
        .expect("replay");
        assert_eq!(
            outcome.report.to_json().unwrap(),
            c.report_json,
            "report JSON must match the original run under {exec:?}"
        );
        assert_eq!(outcome.report.render(), c.render);
        assert_eq!(render_checklist(&checklist(&outcome.report)), c.checklist);
    }
}

#[test]
fn replay_round_trips_through_both_codecs_on_disk() {
    let c = captured();
    let dir = scratch("codecs");

    let bin_path = dir.join("study.log");
    std::fs::write(&bin_path, binary_log_bytes()).unwrap();
    let from_bin = replay_study(&bin_path, &ReplayOptions::default()).expect("binary replay");
    assert_eq!(from_bin.report.render(), c.render);

    // The JSONL codec carries the identical stream; replay output matches.
    let jsonl_path = dir.join("study.jsonl");
    let jsonl = {
        let records: Vec<LogRecord> = c
            .records
            .iter()
            .map(|(seq, r)| LogRecord {
                seq: *seq,
                payload: r.to_value(),
            })
            .collect();
        likelab::sim::event::encode_jsonl(&c.header, &records).expect("encode jsonl")
    };
    std::fs::write(&jsonl_path, jsonl).unwrap();
    let from_jsonl = replay_study(&jsonl_path, &ReplayOptions::default()).expect("jsonl replay");
    assert_eq!(from_jsonl.report.render(), c.render);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_log_is_a_hard_structured_error() {
    let dir = scratch("truncated");
    let bytes = binary_log_bytes();
    let path = dir.join("truncated.log");
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    match read_study_log(&path) {
        Err(StudyError::Log(LogError::Truncated { offset })) => {
            assert!(offset > 0, "offset names the bad frame");
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_log_is_a_hard_structured_error() {
    let dir = scratch("corrupt");
    let mut bytes = binary_log_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF; // flip a payload byte inside the final frame
    let path = dir.join("corrupt.log");
    std::fs::write(&path, &bytes).unwrap();
    match read_study_log(&path) {
        Err(StudyError::Log(LogError::Corrupt { .. })) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn incremental_replay_equals_full_replay() {
    let c = captured();
    let dir = scratch("incremental");

    // Full replay populates the campaign cache.
    let full = replay_records(
        &c.header,
        c.records.clone(),
        &ReplayOptions {
            cache_dir: Some(dir.clone()),
            ..ReplayOptions::default()
        },
    )
    .expect("full replay");
    assert_eq!(full.recomputed.len(), 13);
    assert!(full.cached.is_empty());

    let last_seq = c.records.last().expect("records").0;
    // Cutoff past the end: nothing touched, everything served from cache.
    let all_cached = replay_records(
        &c.header,
        c.records.clone(),
        &ReplayOptions {
            from_seq: Some(last_seq),
            cache_dir: Some(dir.clone()),
            ..ReplayOptions::default()
        },
    )
    .expect("cached replay");
    assert!(all_cached.recomputed.is_empty());
    assert_eq!(all_cached.cached.len(), 13);
    assert_eq!(all_cached.report.render(), c.render);
    assert_eq!(all_cached.report.to_json().unwrap(), c.report_json);

    // A mid-stream cutoff recomputes only touched campaigns, same output.
    let partial = replay_records(
        &c.header,
        c.records.clone(),
        &ReplayOptions {
            from_seq: Some(last_seq / 2),
            cache_dir: Some(dir.clone()),
            ..ReplayOptions::default()
        },
    )
    .expect("partial replay");
    assert_eq!(
        partial.recomputed.len() + partial.cached.len(),
        13,
        "every campaign accounted for"
    );
    assert_eq!(partial.report.render(), c.render);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn incremental_replay_without_cache_is_an_error() {
    let c = captured();
    let last_seq = c.records.last().expect("records").0;
    let err = replay_records(
        &c.header,
        c.records.clone(),
        &ReplayOptions {
            from_seq: Some(last_seq),
            cache_dir: None,
            ..ReplayOptions::default()
        },
    );
    assert!(
        matches!(err, Err(StudyError::Mismatch(_))),
        "cacheless incremental replay must refuse, got {:?}",
        err.map(|_| ())
    );
}
