//! Scale-invariance tests: the claim that `scale` shrinks counts linearly
//! while percentages, distributions, and per-account observables survive.
//! This is what licenses running tests and CI at small scales while quoting
//! full-scale results in EXPERIMENTS.md.

use likelab::osn::GeoBucket;
use likelab::sim::Exec;
use likelab::{run_study, run_study_opts, run_study_with, RunOptions, StudyConfig, StudyOutcome};
use std::sync::OnceLock;

const SMALL: f64 = 0.06;
const LARGE: f64 = 0.18;

fn runs() -> &'static (StudyOutcome, StudyOutcome) {
    static SHARED: OnceLock<(StudyOutcome, StudyOutcome)> = OnceLock::new();
    SHARED.get_or_init(|| {
        (
            run_study(&StudyConfig::paper(5, SMALL)),
            run_study(&StudyConfig::paper(5, LARGE)),
        )
    })
}

#[test]
fn like_counts_scale_linearly() {
    let (small, large) = runs();
    let ratio = LARGE / SMALL;
    for label in ["FB-IND", "FB-EGY", "SF-ALL", "AL-USA", "BL-USA"] {
        let s = small.dataset.campaign(label).unwrap().like_count() as f64;
        let l = large.dataset.campaign(label).unwrap().like_count() as f64;
        let measured_ratio = l / s.max(1.0);
        assert!(
            (measured_ratio / ratio - 1.0).abs() < 0.45,
            "{label}: {s} -> {l} (ratio {measured_ratio:.2}, expected ~{ratio})"
        );
    }
}

#[test]
fn geo_shares_are_scale_invariant() {
    let (small, large) = runs();
    for label in ["FB-IND", "FB-ALL", "SF-USA"] {
        let share = |o: &StudyOutcome, bucket: GeoBucket| {
            o.report
                .figure1
                .iter()
                .find(|r| r.label == label)
                .map(|r| r.share(bucket))
                .unwrap_or(0.0)
        };
        for bucket in [GeoBucket::India, GeoBucket::Turkey, GeoBucket::Usa] {
            let (a, b) = (share(small, bucket), share(large, bucket));
            assert!(
                (a - b).abs() < 0.15,
                "{label}/{bucket}: {a:.2} vs {b:.2} across scales"
            );
        }
    }
}

#[test]
fn per_account_observables_are_scale_invariant() {
    let (small, large) = runs();
    // Figure 4 medians: page-like counts per liker don't shrink with the
    // world.
    for label in ["SF-ALL", "FB-IND", "Facebook"] {
        let median = |o: &StudyOutcome| {
            o.report
                .figure4
                .iter()
                .find(|c| c.label == label)
                .map(|c| c.median())
                .unwrap_or(f64::NAN)
        };
        let (a, b) = (median(small), median(large));
        assert!(
            (a / b - 1.0).abs() < 0.5,
            "{label} median: {a:.0} vs {b:.0} across scales"
        );
    }
    // Table 3 friend-count medians likewise (off-network top-up at work).
    use likelab::analysis::Provider;
    for p in [Provider::BoostLikes, Provider::SocialFormula] {
        let med = |o: &StudyOutcome| {
            o.report
                .table3
                .iter()
                .find(|r| r.provider == p)
                .map(|r| r.friends.median)
                .unwrap()
        };
        let (a, b) = (med(small), med(large));
        assert!(
            (a / b - 1.0).abs() < 0.6,
            "{p} friend median: {a:.0} vs {b:.0} across scales"
        );
    }
}

#[test]
fn kl_divergences_are_scale_invariant() {
    let (small, large) = runs();
    let kl = |o: &StudyOutcome, label: &str| {
        o.report
            .table2
            .iter()
            .find(|r| r.label == label)
            .and_then(|r| r.kl)
            .unwrap()
    };
    // SF stays near zero at both scales; FB-IND stays large at both.
    assert!(kl(small, "SF-ALL") < 0.2 && kl(large, "SF-ALL") < 0.2);
    assert!(kl(small, "FB-IND") > 0.4 && kl(large, "FB-IND") > 0.4);
}

/// The million-account `scale` preset (trimmed so the test stays bounded)
/// produces a byte-identical `StudyReport` JSON document for every worker
/// count — the determinism contract survives the sharded ledger, the
/// chunked report aggregation, and the CSR graph.
#[test]
fn scale_preset_report_is_worker_invariant() {
    let config = StudyConfig::scale_world(11, 0.01);
    let json_for = |exec: Exec| {
        run_study_with(&config, exec)
            .report
            .to_json()
            .expect("report serializes")
    };
    let sequential = json_for(Exec::Sequential);
    assert!(!sequential.is_empty());
    for workers in [1usize, 2, 8] {
        let parallel = json_for(Exec::workers(workers));
        assert!(
            sequential == parallel,
            "scale-preset report differs between sequential and {workers} workers"
        );
    }
}

/// Draining runs of consecutive like events as one columnar batch (the
/// default event loop) is byte-identical to the historical per-event loop:
/// like handling draws no randomness, and account status only changes at
/// sweep events, which terminate every coalesced run. The report JSON — the
/// full observable output of a run — must not differ by a single byte.
#[test]
fn coalesced_like_ingest_matches_per_event_loop() {
    let config = StudyConfig::scale_world(7, 0.01);
    let json_for = |coalesce: bool| {
        run_study_opts(
            &config,
            &RunOptions {
                coalesce_likes: coalesce,
                ..RunOptions::default()
            },
        )
        .expect("study runs")
        .report
        .to_json()
        .expect("report serializes")
    };
    let coalesced = json_for(true);
    assert!(!coalesced.is_empty());
    assert!(
        coalesced == json_for(false),
        "coalesced like ingest diverged from the per-event loop"
    );
}

#[test]
fn temporal_shapes_are_scale_invariant() {
    let (small, large) = runs();
    for label in ["AL-USA", "BL-USA"] {
        let series = |o: &StudyOutcome| {
            o.report
                .figure2
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .clone()
        };
        let (a, b) = (series(small), series(large));
        // Burst/trickle classification is identical across scales.
        assert_eq!(
            a.peak_2h_share > 0.25,
            b.peak_2h_share > 0.25,
            "{label}: burstiness classification must not depend on scale"
        );
    }
}
