//! The online-vs-batch equivalence contract, enforced end to end.
//!
//! SERVING.md promises: an online detector fed the full study log answers
//! every end-of-stream query **bitwise identically** to its batch
//! counterpart run on a world rebuilt from the same log — for any worker
//! count the producing study ran with, and for any chunking of the byte
//! stream on the way in. These tests are that promise.

use likelab::core::serve::{ServeConfig, ServeEngine};
use likelab::detect::online::organic_seeds;
use likelab::detect::{BurstConfig, LockstepConfig, ScorerWeights, SybilRankConfig};
use likelab::graph::UserId;
use likelab::sim::tail::TailReader;
use likelab::sim::Exec;
use likelab::{run_study_opts, RunOptions, StudyConfig, StudyLog, StudyOutcome};

const SCALE: f64 = 0.03;

/// Run the study once per worker count, capturing the log.
fn logged_run(workers: usize) -> (StudyOutcome, StudyLog) {
    let exec = if workers <= 1 {
        Exec::Sequential
    } else {
        Exec::Parallel { workers }
    };
    let mut outcome = run_study_opts(
        &StudyConfig::paper(7, SCALE),
        &RunOptions {
            exec,
            capture_log: true,
            ..RunOptions::default()
        },
    )
    .expect("study runs");
    let log = outcome.log.take().expect("log captured");
    (outcome, log)
}

/// Feed the log's binary encoding through the tail decoder in `chunk`-byte
/// slices and fold every frame into a fresh serve engine.
fn engine_from_bytes(log: &StudyLog, chunk: usize) -> ServeEngine {
    let bytes = log.to_binary().expect("encode");
    let mut tail = TailReader::new();
    let mut engine: Option<ServeEngine> = None;
    let mut pending = Vec::new();
    for slice in bytes.chunks(chunk.max(1)) {
        tail.extend(slice);
        while let Some(frame) = tail.next_record().expect("clean stream") {
            pending.push(frame);
        }
        if engine.is_none() {
            if let Some(header) = tail.header() {
                engine = Some(ServeEngine::new(header, ServeConfig::default()).expect("header"));
            }
        }
        if let Some(e) = &mut engine {
            for frame in pending.drain(..) {
                e.ingest_frame(&frame).expect("valid record");
            }
        }
    }
    tail.finish().expect("no partial frame");
    let mut engine = engine.expect("header arrived");
    for frame in pending.drain(..) {
        engine.ingest_frame(&frame).expect("valid record");
    }
    engine
}

/// Assert every end-of-stream online answer is bitwise equal to batch.
fn assert_bitwise_parity(outcome: &StudyOutcome, engine: &mut ServeEngine) {
    let world = &outcome.world;
    let burst_cfg = BurstConfig::default();
    let weights = ScorerWeights::default();

    // Burst: every honeypot page and every account.
    for &page in &outcome.honeypots {
        let batch = likelab::detect::judge_page(world, page, None, &burst_cfg);
        let online = engine.detectors_mut().burst_mut().page_verdict(page);
        assert_eq!(
            online.peak_share.to_bits(),
            batch.peak_share.to_bits(),
            "page {page:?} share"
        );
        assert_eq!(
            (online.events, online.flagged),
            (batch.events, batch.flagged)
        );
    }
    for i in 0..world.account_count() as u32 {
        let u = UserId(i);
        let batch = likelab::detect::judge_account(world, u, &burst_cfg);
        let online = engine.detectors_mut().burst_mut().user_verdict(u);
        assert_eq!(
            online.peak_share.to_bits(),
            batch.peak_share.to_bits(),
            "user {i} share"
        );

        // Features + combined score, bitwise.
        let now = engine.watermark();
        let batch_score = likelab::detect::score(
            &likelab::detect::extract(world, u, now, &burst_cfg),
            &weights,
        );
        let online_score = engine.online_score(u);
        assert_eq!(
            online_score.to_bits(),
            batch_score.to_bits(),
            "user {i} score"
        );
    }

    // Lockstep: whole report, structurally equal.
    let batch = likelab::detect::detect(world, &LockstepConfig::default());
    let online = engine.detectors_mut().lockstep().report();
    assert_eq!(online.clusters, batch.clusters);

    // SybilRank: trust vector bitwise, from the same seed set.
    let seeds = organic_seeds(world, 500);
    let batch = likelab::detect::sybil_rank(world.friends(), &seeds, &SybilRankConfig::default());
    let graph = engine.world().friends().clone();
    let online = engine
        .detectors_mut()
        .sybilrank_mut()
        .refresh(&graph, &seeds);
    assert_eq!(online.as_slice().len(), batch.as_slice().len());
    for (i, (a, b)) in online
        .as_slice()
        .iter()
        .zip(batch.as_slice().iter())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "trust[{i}]");
    }
}

#[test]
fn online_matches_batch_bitwise_one_worker() {
    let (outcome, log) = logged_run(1);
    let mut engine = engine_from_bytes(&log, 1 << 16);
    assert_bitwise_parity(&outcome, &mut engine);
}

#[test]
fn online_matches_batch_bitwise_two_workers() {
    let (outcome, log) = logged_run(2);
    let mut engine = engine_from_bytes(&log, 1 << 16);
    assert_bitwise_parity(&outcome, &mut engine);
}

#[test]
fn online_matches_batch_bitwise_eight_workers() {
    let (outcome, log) = logged_run(8);
    let mut engine = engine_from_bytes(&log, 1 << 16);
    assert_bitwise_parity(&outcome, &mut engine);
}

#[test]
fn worker_count_does_not_change_the_log() {
    // The parity tests above would be vacuous if the log itself differed
    // per worker count; pin the stronger determinism fact directly.
    let (_, a) = logged_run(1);
    let (_, b) = logged_run(8);
    assert_eq!(a.to_binary().unwrap(), b.to_binary().unwrap());
}

#[test]
fn mid_stream_seq_regression_is_rejected() {
    // The log's ordering contract mid-stream: sequence numbers strictly
    // increase. A frame replayed out of order must be a hard decode error,
    // not silently folded state.
    let (_, log) = logged_run(1);
    let records: Vec<_> = log.records().to_vec();
    assert!(records.len() > 10);
    let frames: Vec<likelab::sim::event::LogRecord> = records
        .iter()
        .map(|(seq, r)| likelab::sim::event::LogRecord {
            seq: *seq,
            payload: serde::Serialize::to_value(r),
        })
        .collect();
    // Duplicate frame 5 after frame 6: seq goes 5, 6, 5.
    let mut tampered = frames[..7].to_vec();
    tampered.push(frames[5].clone());
    let bytes = likelab::sim::event::encode_binary(log.header(), &tampered).unwrap();
    let mut tail = TailReader::new();
    tail.extend(&bytes);
    let mut err = None;
    loop {
        match tail.next_record() {
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    let err = err.expect("seq regression must error");
    assert!(
        err.to_string().contains("sequence"),
        "unexpected error: {err}"
    );
}

/// Packed-ledger parity: the batch world builds its bit-packed posting lists
/// through bulk parallel `ingest_batch`, while the serve engine folds the
/// same likes one `record` at a time from the log. Those are maximally
/// different construction orders for the packed encoding — every observable
/// ledger query must still agree exactly, including iteration order.
#[test]
fn packed_ledger_folds_identically_online_and_batch() {
    let (outcome, log) = logged_run(8);
    let engine = engine_from_bytes(&log, 1 << 16);
    let batch = outcome.world.likes();
    let online = engine.world().likes();

    assert_eq!(online.len(), batch.len());
    assert_eq!(online.shard_count(), batch.shard_count());

    // Global record stream: same likes in the same order.
    let a: Vec<_> = online.records().map(|r| (r.user, r.page, r.at)).collect();
    let b: Vec<_> = batch.records().map(|r| (r.user, r.page, r.at)).collect();
    assert_eq!(a, b);

    // Per-page posting lists, across every page (honeypots included): the
    // packed per-shard indexes must decode to identical streams.
    for p in 0..outcome.world.page_count() as u32 {
        let page = likelab::graph::PageId(p);
        assert_eq!(online.page_like_count(page), batch.page_like_count(page));
        let a: Vec<_> = online.of_page(page).map(|r| (r.user, r.at)).collect();
        let b: Vec<_> = batch.of_page(page).map(|r| (r.user, r.at)).collect();
        assert_eq!(a, b, "page {p} posting list");
    }

    // Per-user packed indexes.
    for u in 0..outcome.world.account_count() as u32 {
        let user = UserId(u);
        assert_eq!(online.user_like_count(user), batch.user_like_count(user));
        let a: Vec<_> = online.user_pages(user).collect();
        let b: Vec<_> = batch.user_pages(user).collect();
        assert_eq!(a, b, "user {u} pages");
        let a: Vec<_> = online.user_times(user).collect();
        let b: Vec<_> = batch.user_times(user).collect();
        assert_eq!(a, b, "user {u} times");
    }
}

/// Chunking invariance: however the byte stream is sliced on the way in,
/// the engine converges on the same live state. Chunk sizes are drawn from
/// a seeded RNG (plus fixed pathological sizes), so the sweep is random
/// but reproducible.
#[test]
fn chunk_size_does_not_change_the_fold() {
    let (outcome, log) = logged_run(1);
    let mut rng = likelab::sim::Rng::seed_from_u64(0xC4A7);
    let mut chunks = vec![3, 19, 4_096];
    chunks.extend((0..5).map(|_| 1 + rng.index(200_000)));
    let batch = likelab::detect::judge_page(
        &outcome.world,
        outcome.honeypots[0],
        None,
        &BurstConfig::default(),
    );
    for chunk in chunks {
        let mut engine = engine_from_bytes(&log, chunk);
        assert_eq!(
            engine.records_ingested() as usize,
            log.records().len(),
            "chunk {chunk}"
        );
        assert_eq!(engine.world().likes().len(), outcome.world.likes().len());
        assert_eq!(
            engine.world().friends().edge_count(),
            outcome.world.friends().edge_count()
        );
        let online = engine
            .detectors_mut()
            .burst_mut()
            .page_verdict(outcome.honeypots[0]);
        assert_eq!(
            online.peak_share.to_bits(),
            batch.peak_share.to_bits(),
            "chunk {chunk}"
        );
    }
}
