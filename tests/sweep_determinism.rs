//! Determinism contract of the parallel paths: a parallel run must be
//! *byte-identical* (through serialized JSON) to a sequential run — for the
//! per-study report computation and for the multi-seed sweep engine.
//!
//! These are the tests backing the claim in DESIGN.md that parallelism in
//! this codebase changes wall-clock time and nothing else. The container
//! running CI may have a single core, so worker counts are forced explicitly
//! rather than taken from the machine: the threaded code paths execute even
//! where `Exec::auto()` would degenerate to sequential.

use likelab::analysis::StudyReport;
use likelab::sim::Exec;
use likelab::{run_study, run_study_with, run_sweep, StudyConfig, SweepConfig};

/// A small but non-trivial world: all 13 campaigns active, thousands of
/// accounts, every analysis section non-empty.
const SCALE: f64 = 0.03;

#[test]
fn parallel_study_report_is_byte_identical_to_sequential() {
    let outcome = run_study(&StudyConfig::paper(7, SCALE));
    let sequential = StudyReport::compute_sequential(&outcome.dataset)
        .to_json()
        .expect("report serializes");
    for workers in [2, 4, 8] {
        let parallel = StudyReport::compute_with(&outcome.dataset, Exec::workers(workers))
            .to_json()
            .expect("report serializes");
        assert_eq!(sequential, parallel, "workers={workers}");
    }
}

#[test]
fn study_outcome_does_not_depend_on_worker_count() {
    let run = |exec: Exec| {
        run_study_with(&StudyConfig::paper(11, SCALE), exec)
            .report
            .to_json()
            .expect("report serializes")
    };
    assert_eq!(run(Exec::Sequential), run(Exec::workers(4)));
}

#[test]
fn eight_seed_sweep_is_byte_identical_across_worker_counts() {
    let config = SweepConfig {
        master_seed: 42,
        n_seeds: 8,
        scales: vec![0.0125],
    };
    let sequential = run_sweep(&config, Exec::Sequential)
        .to_json()
        .expect("sweep report serializes");
    let parallel = run_sweep(&config, Exec::workers(4))
        .to_json()
        .expect("sweep report serializes");
    assert_eq!(sequential, parallel);
}
