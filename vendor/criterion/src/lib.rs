//! # criterion (vendored shim)
//!
//! A small wall-clock micro-benchmark harness exposing the `criterion` API
//! surface this workspace uses (the build environment has no crates.io
//! access): [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], `b.iter(...)`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs timed
//! batches until the measurement budget is spent, and reports the mean
//! per-iteration time. No statistics beyond mean/min — the repository's
//! EXPERIMENTS.md quotes these numbers as order-of-magnitude indicators,
//! not confidence intervals.
//!
//! Environment knobs: `CRITERION_MEASURE_MS` (per-bench measurement budget,
//! default 300 ms), `CRITERION_FILTER` (substring filter on bench names).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    measure: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure_ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            measure: Duration::from_millis(measure_ms),
            filter: std::env::var("CRITERION_FILTER").ok(),
        }
    }
}

impl Criterion {
    /// Compatibility no-op (the real crate reads CLI flags here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.enabled(name) {
            let mut b = Bencher {
                measure: self.measure,
                report: None,
            };
            f(&mut b);
            match b.report {
                Some(r) => println!(
                    "{name:50} time: [{} mean, {} min, {} iters]",
                    format_ns(r.mean_ns),
                    format_ns(r.min_ns),
                    r.iters
                ),
                None => println!("{name:50} (no measurement)"),
            }
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks (`group/bench-id` naming).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op: the shim sizes measurement by time budget, not
    /// sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Compatibility no-op (measurement budget comes from the environment).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        self.parent.bench_function(&full, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(&mut self) {}
}

/// A benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id naming a function and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id naming just a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Human-scale rendering of a nanosecond quantity.
fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

struct Report {
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
}

/// Runs and times the benchmarked closure.
pub struct Bencher {
    measure: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Time `f`, called repeatedly until the measurement budget is spent.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up: one call, which also sizes the batches.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed().max(Duration::from_nanos(1));

        let budget = self.measure;
        let batch = (budget.as_nanos() / 20 / first.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let mut min_ns = f64::INFINITY;
        while total < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            total += dt;
            iters += batch;
            min_ns = min_ns.min(dt.as_nanos() as f64 / batch as f64);
        }
        self.report = Some(Report {
            mean_ns: total.as_nanos() as f64 / iters as f64,
            min_ns,
            iters,
        });
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        // Macro-generated plumbing; exempt from the workspace missing_docs
        // level so benches stay terse.
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
