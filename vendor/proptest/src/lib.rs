//! # proptest (vendored shim)
//!
//! A minimal, dependency-free stand-in for the real `proptest` crate (the
//! build environment has no crates.io access). It keeps the property-test
//! *surface* the workspace uses — `proptest! { fn f(x in strategy) {...} }`,
//! range/`any`/`vec`/tuple/`prop_map` strategies, and the `prop_assert*`
//! macros — while swapping the engine for a simple deterministic sampler:
//!
//! - every test function runs a fixed number of random cases (default 96,
//!   override with the `PROPTEST_CASES` environment variable);
//! - case RNG seeds derive from the test name, so runs are reproducible and
//!   failures can be replayed by rerunning the same test binary;
//! - the first cases are biased toward range endpoints (the classic
//!   edge-case bugs), the rest are uniform;
//! - there is no shrinking — the failure message reports the case number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategy constructors namespaced like the real crate (`prop::collection`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{hash_set, vec};
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, vec, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests.
///
/// Each function body runs once per generated case; use the `prop_assert*`
/// macros inside (plain `assert!` also works — it just panics without the
/// case number).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    stringify!($name),
                    ($($strategy,)+),
                    |($($parm,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left), stringify!($right), l, r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                ::std::format!($($fmt)*), l, r,
            ));
        }
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
            ));
        }
    }};
}

/// Skip the current case unless `cond` holds (no replacement case is drawn —
/// the shim simply counts the case as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
