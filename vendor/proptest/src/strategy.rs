//! Strategies: deterministic samplers over value spaces.

use std::ops::{Range, RangeInclusive};

/// The sampler RNG — SplitMix64, deterministic by construction.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
    /// Case index, used to bias early cases toward range endpoints.
    pub case: usize,
}

impl TestRng {
    /// Seed a case RNG.
    pub fn new(seed: u64, case: usize) -> Self {
        TestRng {
            state: seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            case,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- integer and float ranges ---------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Bias the first two cases toward the endpoints.
                match rng.case {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => {
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $t
                    }
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                match rng.case {
                    0 => lo,
                    1 => hi,
                    _ => {
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let draw = (u128::from(rng.next_u64()) * span) >> 64;
                        (lo as i128 + draw as i128) as $t
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        if rng.case == 0 {
            return self.start;
        }
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        match rng.case {
            0 => lo,
            1 => hi,
            _ => lo + (hi - lo) * rng.unit_f64(),
        }
    }
}

// --- any -------------------------------------------------------------------

/// Marker returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full value space of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                match rng.case {
                    0 => 0,
                    1 => <$t>::MAX,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        match rng.case {
            0 => 0,
            1 => i64::MAX,
            2 => i64::MIN,
            _ => rng.next_u64() as i64,
        }
    }
}

// --- collections and tuples ------------------------------------------------

/// Lengths a [`vec()`] strategy may take.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// The [`vec()`] strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.lo < self.size.hi, "empty size range");
        let len = if rng.case == 0 {
            self.size.lo
        } else {
            self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
        };
        // Element draws should not inherit endpoint bias from the case
        // index, or every early-case vector would be all-minimum.
        let mut element_rng = TestRng {
            state: rng.next_u64(),
            case: 2,
        };
        (0..len)
            .map(|_| self.element.sample(&mut element_rng))
            .collect()
    }
}

/// The [`hash_set`] strategy.
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `HashSet` of values from `element`, with a target size drawn from
/// `size`. Duplicates collapse, so the realized set may be smaller — matching
/// the real crate's treatment of sizes as upper bounds under collision.
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: std::hash::Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: std::hash::Hash + Eq,
{
    type Value = std::collections::HashSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        assert!(self.size.lo < self.size.hi, "empty size range");
        let len = if rng.case == 0 {
            self.size.lo
        } else {
            self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
        };
        let mut element_rng = TestRng {
            state: rng.next_u64(),
            case: 2,
        };
        (0..len)
            .map(|_| self.element.sample(&mut element_rng))
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($idx:tt : $s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(0: A);
impl_tuple_strategy!(0: A, 1: B);
impl_tuple_strategy!(0: A, 1: B, 2: C);
impl_tuple_strategy!(0: A, 1: B, 2: C, 3: D);
impl_tuple_strategy!(0: A, 1: B, 2: C, 3: D, 4: E);
impl_tuple_strategy!(0: A, 1: B, 2: C, 3: D, 4: E, 5: F);
