//! The case runner behind the `proptest!` macro.

use crate::strategy::{Strategy, TestRng};

/// Number of cases per property (override with `PROPTEST_CASES`).
fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(96)
}

/// FNV-1a — stable seed from the test name.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run one property: draw `case_count()` inputs from `strategies` and apply
/// `property` to each. Panics (failing the enclosing `#[test]`) on the first
/// case whose property returns `Err`.
pub fn run<S, F>(name: &str, strategies: S, mut property: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), String>,
{
    let seed = fnv1a(name);
    let cases = case_count();
    for case in 0..cases {
        let mut rng = TestRng::new(seed, case);
        let input = strategies.sample(&mut rng);
        if let Err(message) = property(input) {
            panic!(
                "proptest property `{name}` failed at case {case}/{cases}: {message} \
                 (deterministic: rerun this test to reproduce)"
            );
        }
    }
}
