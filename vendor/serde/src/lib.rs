//! # serde (vendored shim)
//!
//! A minimal, dependency-free stand-in for the real `serde` crate. The build
//! environment this repository targets has no access to crates.io, so the
//! workspace vendors the narrow surface it actually uses:
//!
//! - `#[derive(Serialize, Deserialize)]` on plain structs (named or tuple),
//!   and on enums with unit, tuple, or struct variants — no `#[serde(...)]`
//!   attributes, no generics;
//! - a self-describing [`Value`] data model that `serde_json` (also
//!   vendored) renders to and parses from JSON.
//!
//! The design is deliberately value-based rather than visitor-based: every
//! `Serialize` type lowers itself to a [`Value`] tree, and `Deserialize`
//! rebuilds from one. That is slower than real serde but trivially correct,
//! and the laboratory only serializes reports and datasets at the edges of a
//! run, never on hot paths.
//!
//! Field order is preserved (objects are ordered vectors of pairs), so
//! serialization is deterministic: two identical values always produce
//! byte-identical JSON — the property the parallel-vs-sequential determinism
//! tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing value: the data model every `Serialize` type lowers to.
///
/// Mirrors the JSON data model, with integers kept apart from floats so
/// round-trips preserve representation.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer (positive integers parse as [`Value::UInt`]).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map — insertion order is preserved and rendered verbatim.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// An "expected X, found Y" mismatch error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lower `self` to the data model.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: fetch and deserialize a struct field.
///
/// Missing fields read as `null`, which lets `Option` fields tolerate
/// hand-edited JSON; every serializer in this workspace always writes all
/// fields.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(_) => T::from_value(v.get(name).unwrap_or(&Value::Null))
            .map_err(|e| Error(format!("field `{name}`: {e}"))),
        other => Err(Error::expected("object", other)),
    }
}

/// Derive-macro helper: the `index`-th element of an array value.
pub fn element<T: Deserialize>(v: &Value, index: usize) -> Result<T, Error> {
    match v {
        Value::Array(items) => match items.get(index) {
            Some(item) => T::from_value(item).map_err(|e| Error(format!("element {index}: {e}"))),
            None => Err(Error(format!("missing array element {index}"))),
        },
        other => Err(Error::expected("array", other)),
    }
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v)
            .and_then(|n| usize::try_from(n).map_err(|_| Error::msg("integer out of range")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v)
            .and_then(|n| isize::try_from(n).map_err(|_| Error::msg("integer out of range")))
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null (JSON has no NaN).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// --- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of {N} elements, found {got}")))
    }
}

macro_rules! impl_tuple {
    ($($idx:tt : $t:ident),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($(element::<$t>(v, $idx)?,)+))
            }
        }
    };
}

impl_tuple!(0: A);
impl_tuple!(0: A, 1: B);
impl_tuple!(0: A, 1: B, 2: C);
impl_tuple!(0: A, 1: B, 2: C, 3: D);
impl_tuple!(0: A, 1: B, 2: C, 3: D, 4: E);
impl_tuple!(0: A, 1: B, 2: C, 3: D, 4: E, 5: F);

/// Render a map key. JSON object keys must be strings; string and integer
/// keys (and unit-variant enums, which serialize as strings) are supported.
fn key_to_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        other => panic!(
            "map keys must serialize to strings or integers, got {}",
            other.kind()
        ),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| {
                    let key = K::from_value(&Value::Str(k.clone()))
                        .or_else(|_| {
                            K::from_value(&Value::UInt(
                                k.parse().map_err(|_| Error(format!("bad map key `{k}`")))?,
                            ))
                        })
                        .map_err(|e| Error(format!("map key `{k}`: {e}")))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
