//! # serde_derive (vendored shim)
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the vendored `serde` value model. Written against `proc_macro` alone (the
//! build environment has no crates.io access, so `syn`/`quote` are
//! unavailable).
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! - structs with named fields;
//! - tuple structs (one field serializes transparently, like serde newtypes;
//!   more fields serialize as an array);
//! - unit structs;
//! - enums with unit, tuple, and struct variants (externally tagged, like
//!   serde's default representation).
//!
//! Not supported (the derive panics with a clear message): generic types and
//! `#[serde(...)]` attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.impl_serialize()
        .parse()
        .expect("generated impl parses")
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.impl_deserialize()
        .parse()
        .expect("generated impl parses")
}

/// What a variant (or struct body) carries.
enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields — only the arity matters.
    Tuple(usize),
    /// No payload.
    Unit,
}

/// One enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// A parsed `struct` or `enum` item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Cursor over a flat token list.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip `#[...]` attributes (including doc comments).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // `#`
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                _ => panic!("expected `[...]` after `#`"),
            }
        }
    }

    /// Skip a visibility qualifier (`pub`, `pub(crate)`, ...), if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected {what}, found {other:?}"),
        }
    }

    /// Skip a type expression up to a top-level `,` (or end of stream).
    /// Parentheses/brackets arrive as atomic groups; only angle brackets
    /// need explicit depth tracking.
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    ',' if angle_depth == 0 => break,
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

/// Parse the field names of a `{ ... }` struct body or struct variant.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut names = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        match c.next() {
            Some(TokenTree::Ident(i)) => names.push(i.to_string()),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        }
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        c.skip_type();
        c.next(); // the `,`, if any
    }
    names
}

/// Count the fields of a `( ... )` tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        count += 1;
        c.skip_type();
        c.next(); // the `,`, if any
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                c.pos += 1;
                Fields::Named(parse_named_fields(body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body = g.stream();
                c.pos += 1;
                Fields::Tuple(count_tuple_fields(body))
            }
            _ => Fields::Unit,
        };
        // Consume up to and including the trailing comma (tolerates
        // discriminants, which this workspace does not use).
        while let Some(t) = c.next() {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

impl Item {
    fn parse(input: TokenStream) -> Item {
        let mut c = Cursor::new(input);
        c.skip_attributes();
        c.skip_visibility();
        let kind = c.expect_ident("`struct` or `enum`");
        let name = c.expect_ident("type name");
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == '<' {
                panic!("derive(Serialize/Deserialize) shim does not support generics on `{name}`");
            }
        }
        match kind.as_str() {
            "struct" => {
                let fields = match c.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                    other => panic!("unexpected struct body: {other:?}"),
                };
                Item::Struct { name, fields }
            }
            "enum" => {
                let variants = match c.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        parse_variants(g.stream())
                    }
                    other => panic!("unexpected enum body: {other:?}"),
                };
                Item::Enum { name, variants }
            }
            other => panic!("cannot derive for `{other}` items"),
        }
    }

    fn impl_serialize(&self) -> String {
        match self {
            Item::Struct { name, fields } => {
                let body = match fields {
                    Fields::Named(names) => {
                        let pairs: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value(&self.{f}))"
                                )
                            })
                            .collect();
                        format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
                    }
                    Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                            .collect();
                        format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                    }
                    Fields::Unit => "::serde::Value::Null".to_string(),
                };
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                       fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                     }}"
                )
            }
            Item::Enum { name, variants } => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vname = &v.name;
                        match &v.fields {
                            Fields::Unit => format!(
                                "{name}::{vname} => \
                                 ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                            ),
                            Fields::Tuple(n) => {
                                let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                                let inner = if *n == 1 {
                                    "::serde::Serialize::to_value(x0)".to_string()
                                } else {
                                    let items: Vec<String> = binds
                                        .iter()
                                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                                        .collect();
                                    format!(
                                        "::serde::Value::Array(::std::vec![{}])",
                                        items.join(", ")
                                    )
                                };
                                format!(
                                    "{name}::{vname}({binds}) => ::serde::Value::Object(\
                                     ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                     {inner})]),",
                                    binds = binds.join(", ")
                                )
                            }
                            Fields::Named(fields) => {
                                let pairs: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "(::std::string::String::from(\"{f}\"), \
                                             ::serde::Serialize::to_value({f}))"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "{name}::{vname} {{ {fields} }} => ::serde::Value::Object(\
                                     ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                     ::serde::Value::Object(::std::vec![{pairs}]))]),",
                                    fields = fields.join(", "),
                                    pairs = pairs.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                       fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                       }}\n\
                     }}",
                    arms.join("\n")
                )
            }
        }
    }

    fn impl_deserialize(&self) -> String {
        let header = |name: &str, body: &str| {
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) \
                   -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        };
        match self {
            Item::Struct { name, fields } => {
                let body = match fields {
                    Fields::Named(names) => {
                        let inits: Vec<String> = names
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(v, \"{f}\")?,"))
                            .collect();
                        format!(
                            "::std::result::Result::Ok({name} {{ {} }})",
                            inits.join(" ")
                        )
                    }
                    Fields::Tuple(1) => format!(
                        "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                    ),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::element(v, {i})?"))
                            .collect();
                        format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
                    }
                    Fields::Unit => format!("::std::result::Result::Ok({name})"),
                };
                header(name, &body)
            }
            Item::Enum { name, variants } => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.fields, Fields::Unit))
                    .map(|v| {
                        format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                            vname = v.name
                        )
                    })
                    .collect();
                let tagged_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|v| {
                        let vname = &v.name;
                        match &v.fields {
                            Fields::Unit => None,
                            Fields::Tuple(1) => Some(format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(inner)?)),"
                            )),
                            Fields::Tuple(n) => {
                                let inits: Vec<String> = (0..*n)
                                    .map(|i| format!("::serde::element(inner, {i})?"))
                                    .collect();
                                Some(format!(
                                    "\"{vname}\" => ::std::result::Result::Ok(\
                                     {name}::{vname}({})),",
                                    inits.join(", ")
                                ))
                            }
                            Fields::Named(fields) => {
                                let inits: Vec<String> = fields
                                    .iter()
                                    .map(|f| format!("{f}: ::serde::field(inner, \"{f}\")?,"))
                                    .collect();
                                Some(format!(
                                    "\"{vname}\" => ::std::result::Result::Ok(\
                                     {name}::{vname} {{ {} }}),",
                                    inits.join(" ")
                                ))
                            }
                        }
                    })
                    .collect();
                let body = format!(
                    "match v {{\n\
                       ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::msg(\
                           ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                       }},\n\
                       ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                           {tagged_arms}\n\
                           other => ::std::result::Result::Err(::serde::Error::msg(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                       }}\n\
                       other => ::std::result::Result::Err(\
                         ::serde::Error::expected(\"{name} variant\", other)),\n\
                     }}",
                    unit_arms = unit_arms.join("\n"),
                    tagged_arms = tagged_arms.join("\n"),
                );
                header(name, &body)
            }
        }
    }
}
