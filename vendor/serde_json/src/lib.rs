//! # serde_json (vendored shim)
//!
//! JSON rendering and parsing over the vendored `serde` value model. Covers
//! the surface this workspace uses: [`to_string`], [`to_string_pretty`],
//! [`to_value`], [`from_str`], and the [`Result`]/[`Error`] pair.
//!
//! Output is deterministic: object fields render in declaration order and
//! floats use Rust's shortest round-trip formatting, so equal values always
//! produce byte-identical documents (the property the determinism tests in
//! this repository assert). Non-finite floats render as `null`, mirroring
//! JSON's lack of NaN/Infinity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON error: a message, optionally with the byte offset of a parse fault.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
    offset: Option<usize>,
}

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error {
            message: e.to_string(),
            offset: None,
        }
    }
}

/// Alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Lower any serializable value to the [`Value`] data model.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Render compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Render pretty JSON (two-space indent, `serde_json` style).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parse a JSON document into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    Ok(T::from_value(&value)?)
}

// --- rendering -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Debug formatting gives the shortest round-trip form and
                // always includes a decimal point or exponent.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{lit}`"), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::parse(
                format!("unexpected `{}`", other as char),
                self.pos,
            )),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse("invalid UTF-8", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<()> {
        let at = self.pos;
        let b = self.peek().ok_or_else(|| Error::parse("bad escape", at))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair.
                    self.expect_literal("\\u")?;
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(Error::parse("bad low surrogate", at));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| Error::parse("bad code point", at))?);
            }
            other => {
                return Err(Error::parse(
                    format!("bad escape `\\{}`", other as char),
                    at,
                ))
            }
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let at = self.pos;
        if self.bytes.len() < at + 4 {
            return Err(Error::parse("bad \\u escape", at));
        }
        let hex = std::str::from_utf8(&self.bytes[at..at + 4])
            .map_err(|_| Error::parse("bad \\u escape", at))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::parse("bad \\u escape", at))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("bad number", start))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse(format!("bad number `{text}`"), start))
    }
}
